package storage

import (
	"bytes"
	"fmt"
	"sort"
)

// LSMBTree is a log-structured merge tree of B-tree components: updates go
// to an in-memory component that is flushed to an on-disk B-tree when it
// exceeds its budget, turning random update I/O into sequential writes
// (Section 4 "Access methods"). Lookups consult the in-memory component
// and then disk components newest-first; deletions write tombstones.
//
// The paper recommends the LSM B-tree for workloads whose vertex data
// changes size drastically across supersteps or that perform frequent
// graph mutations (e.g. the Genomix path-merging algorithm).
type LSMBTree struct {
	bc            *BufferCache
	dir           string
	memLimit      int64
	maxComponents int

	mem      map[string][]byte // value includes the live/tombstone prefix
	memBytes int64
	seq      int
	comps    []*BTree // newest first

	// Stats.
	Flushes, Merges int64
}

const (
	recLive      = 0
	recTombstone = 1
)

// LSMOptions configures an LSM B-tree.
type LSMOptions struct {
	// MemLimit is the in-memory component byte budget (default 4 MiB).
	MemLimit int64
	// MaxComponents triggers a full merge when exceeded (default 4).
	MaxComponents int
}

// CreateLSMBTree creates an empty LSM tree whose component files live
// under dir (a per-partition directory).
func CreateLSMBTree(bc *BufferCache, dir string, opts LSMOptions) (*LSMBTree, error) {
	if opts.MemLimit <= 0 {
		opts.MemLimit = 4 << 20
	}
	if opts.MaxComponents <= 0 {
		opts.MaxComponents = 4
	}
	return &LSMBTree{
		bc:            bc,
		dir:           dir,
		memLimit:      opts.MemLimit,
		maxComponents: opts.MaxComponents,
		mem:           make(map[string][]byte),
	}, nil
}

// Insert upserts key=value.
func (l *LSMBTree) Insert(key, value []byte) error {
	rec := make([]byte, 1+len(value))
	rec[0] = recLive
	copy(rec[1:], value)
	l.put(key, rec)
	return l.maybeFlush()
}

// Delete writes a tombstone for key.
func (l *LSMBTree) Delete(key []byte) error {
	l.put(key, []byte{recTombstone})
	return l.maybeFlush()
}

func (l *LSMBTree) put(key, rec []byte) {
	k := string(key)
	if old, ok := l.mem[k]; ok {
		l.memBytes -= int64(len(old))
	} else {
		l.memBytes += int64(len(k))
	}
	l.mem[k] = rec
	l.memBytes += int64(len(rec))
}

// Search returns the value for key or ErrNotFound.
func (l *LSMBTree) Search(key []byte) ([]byte, error) {
	if rec, ok := l.mem[string(key)]; ok {
		return decodeLSMRecord(rec)
	}
	for _, c := range l.comps {
		rec, err := c.Search(key)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		return decodeLSMRecord(rec)
	}
	return nil, ErrNotFound
}

func decodeLSMRecord(rec []byte) ([]byte, error) {
	if len(rec) == 0 {
		return nil, fmt.Errorf("lsm: empty record")
	}
	if rec[0] == recTombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), rec[1:]...), nil
}

func (l *LSMBTree) maybeFlush() error {
	if l.memBytes < l.memLimit {
		return nil
	}
	return l.Flush()
}

// Flush persists the in-memory component as a new disk component.
func (l *LSMBTree) Flush() error {
	if len(l.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(l.mem))
	for k := range l.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	l.seq++
	path := fmt.Sprintf("%s/component-%06d.btree", l.dir, l.seq)
	t, err := CreateBTree(l.bc, path)
	if err != nil {
		return err
	}
	loader, err := t.NewBulkLoader(1.0)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := loader.Add([]byte(k), l.mem[k]); err != nil {
			return err
		}
	}
	if err := loader.Finish(); err != nil {
		return err
	}
	l.comps = append([]*BTree{t}, l.comps...)
	l.mem = make(map[string][]byte)
	l.memBytes = 0
	l.Flushes++
	if len(l.comps) > l.maxComponents {
		return l.mergeAll()
	}
	return nil
}

// mergeAll compacts every disk component into one, dropping tombstones.
func (l *LSMBTree) mergeAll() error {
	l.seq++
	path := fmt.Sprintf("%s/component-%06d.btree", l.dir, l.seq)
	t, err := CreateBTree(l.bc, path)
	if err != nil {
		return err
	}
	loader, err := t.NewBulkLoader(1.0)
	if err != nil {
		return err
	}
	it, err := l.mergedIterator(true)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		k, rec, ok := it.nextRaw()
		if !ok {
			break
		}
		if rec[0] == recTombstone {
			continue // merge of all components drops tombstones
		}
		if err := loader.Add(k, rec); err != nil {
			return err
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if err := loader.Finish(); err != nil {
		return err
	}
	old := l.comps
	l.comps = []*BTree{t}
	for _, c := range old {
		if err := c.Drop(); err != nil {
			return err
		}
	}
	l.Merges++
	return nil
}

// LSMCursor iterates live records in ascending key order across all
// components, newest value winning.
type LSMCursor struct {
	sources []lsmSource
	err     error
}

type lsmSource struct {
	// memory snapshot
	keys []string
	mem  map[string][]byte
	idx  int
	// or a disk cursor
	cur *Cursor
	// lookahead
	k, v  []byte
	valid bool
}

func (s *lsmSource) advance() {
	s.valid = false
	if s.cur != nil {
		k, v, ok := s.cur.Next()
		if ok {
			s.k, s.v, s.valid = k, v, true
		}
		return
	}
	if s.idx < len(s.keys) {
		k := s.keys[s.idx]
		s.idx++
		s.k, s.v, s.valid = []byte(k), s.mem[k], true
	}
}

// ScanFrom returns a cursor positioned at the first key >= start.
func (l *LSMBTree) ScanFrom(start []byte) (*LSMCursor, error) {
	return l.scanFrom(start, false)
}

func (l *LSMBTree) mergedIterator(includeMem bool) (*LSMCursor, error) {
	return l.scanFrom(nil, !includeMem)
}

func (l *LSMBTree) scanFrom(start []byte, skipMem bool) (*LSMCursor, error) {
	c := &LSMCursor{}
	if !skipMem {
		keys := make([]string, 0, len(l.mem))
		for k := range l.mem {
			if start == nil || bytes.Compare([]byte(k), start) >= 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		s := lsmSource{keys: keys, mem: l.mem}
		s.advance()
		c.sources = append(c.sources, s)
	}
	for _, comp := range l.comps {
		cur, err := comp.ScanFrom(start)
		if err != nil {
			c.Close()
			return nil, err
		}
		s := lsmSource{cur: cur}
		s.advance()
		c.sources = append(c.sources, s)
	}
	return c, nil
}

// nextRaw returns the next key with its raw (prefix-tagged) record,
// resolving duplicate keys in favor of the newest source.
func (c *LSMCursor) nextRaw() ([]byte, []byte, bool) {
	var bestIdx = -1
	for i := range c.sources {
		s := &c.sources[i]
		if !s.valid {
			continue
		}
		if bestIdx == -1 || bytes.Compare(s.k, c.sources[bestIdx].k) < 0 {
			bestIdx = i
		}
	}
	if bestIdx == -1 {
		return nil, nil, false
	}
	k := c.sources[bestIdx].k
	v := c.sources[bestIdx].v
	// Advance every source holding this key; bestIdx is the newest since
	// sources are ordered newest-first and ties resolve to the lower
	// index.
	for i := range c.sources {
		s := &c.sources[i]
		for s.valid && bytes.Equal(s.k, k) {
			s.advance()
		}
		if s.cur != nil && s.cur.Err() != nil {
			c.err = s.cur.Err()
		}
	}
	return k, v, true
}

// Next returns the next live key/value pair.
func (c *LSMCursor) Next() (key, value []byte, ok bool) {
	for {
		k, rec, more := c.nextRaw()
		if !more {
			return nil, nil, false
		}
		if rec[0] == recTombstone {
			continue
		}
		return k, rec[1:], true
	}
}

// Err returns any I/O error hit during iteration.
func (c *LSMCursor) Err() error { return c.err }

// Close releases all underlying cursors.
func (c *LSMCursor) Close() {
	for i := range c.sources {
		if c.sources[i].cur != nil {
			c.sources[i].cur.Close()
		}
	}
}

// Close flushes in-memory data and closes all components.
func (l *LSMBTree) Close() error {
	if err := l.Flush(); err != nil {
		return err
	}
	for _, c := range l.comps {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Drop discards the tree and deletes all component files.
func (l *LSMBTree) Drop() error {
	for _, c := range l.comps {
		if err := c.Drop(); err != nil {
			return err
		}
	}
	l.comps = nil
	l.mem = make(map[string][]byte)
	l.memBytes = 0
	return nil
}

// Components returns the number of disk components (for tests/stats).
func (l *LSMBTree) Components() int { return len(l.comps) }

package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"pregelix/internal/memory"
	"pregelix/internal/tuple"
)

func newTestCache(t *testing.T, pages int) *BufferCache {
	t.Helper()
	var budget *memory.Budget
	if pages > 0 {
		budget = memory.NewBudget("test", int64(pages*1024))
	}
	return NewBufferCache(1024, budget)
}

func newTestBTree(t *testing.T, pages int) *BTree {
	t.Helper()
	bc := newTestCache(t, pages)
	bt, err := CreateBTree(bc, filepath.Join(t.TempDir(), "t.btree"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bt.Close() })
	return bt
}

func TestBTreeInsertSearch(t *testing.T) {
	bt := newTestBTree(t, 0)
	for i := 0; i < 1000; i++ {
		k := tuple.EncodeUint64(uint64(i * 7 % 1000))
		v := []byte(fmt.Sprintf("value-%d", i*7%1000))
		if err := bt.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		v, err := bt.Search(tuple.EncodeUint64(uint64(i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		want := fmt.Sprintf("value-%d", i)
		if string(v) != want {
			t.Fatalf("key %d: got %q want %q", i, v, want)
		}
	}
	if _, err := bt.Search(tuple.EncodeUint64(5000)); err != ErrNotFound {
		t.Fatalf("missing key: got %v want ErrNotFound", err)
	}
}

func TestBTreeUpdateGrowsValue(t *testing.T) {
	bt := newTestBTree(t, 0)
	k := tuple.EncodeUint64(42)
	if err := bt.Insert(k, []byte("s")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 500)
	if err := bt.Insert(k, big); err != nil {
		t.Fatal(err)
	}
	v, err := bt.Search(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, big) {
		t.Fatal("updated value mismatch")
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newTestBTree(t, 0)
	for i := 0; i < 500; i++ {
		if err := bt.Insert(tuple.EncodeUint64(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		ok, err := bt.Delete(tuple.EncodeUint64(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 500; i++ {
		_, err := bt.Search(tuple.EncodeUint64(uint64(i)))
		if i%2 == 0 && err != ErrNotFound {
			t.Fatalf("deleted key %d still present (err=%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %d missing: %v", i, err)
		}
	}
	ok, err := bt.Delete(tuple.EncodeUint64(9999))
	if err != nil || ok {
		t.Fatalf("delete of absent key: ok=%v err=%v", ok, err)
	}
}

func TestBTreeScan(t *testing.T) {
	bt := newTestBTree(t, 0)
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := bt.Insert(tuple.EncodeUint64(uint64(i*2)), tuple.EncodeUint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c, err := bt.ScanFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var prev []byte
	count := 0
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %d", count)
		}
		prev = k
		count++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Fatalf("scan returned %d records, want %d", count, n)
	}

	// Mid-range scan.
	c2, err := bt.ScanFrom(tuple.EncodeUint64(1001))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	k, _, ok := c2.Next()
	if !ok || tuple.DecodeUint64(k) != 1002 {
		t.Fatalf("ScanFrom(1001) first key = %v ok=%v, want 1002", k, ok)
	}
}

func TestBTreeTinyBufferCacheSpills(t *testing.T) {
	// With only 8 cacheable pages the tree must still work correctly,
	// exercising eviction + writeback.
	bc := newTestCache(t, 8)
	bt, err := CreateBTree(bc, filepath.Join(t.TempDir(), "spill.btree"))
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := bt.Insert(tuple.EncodeUint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if bc.Evictions == 0 {
		t.Fatal("expected evictions with a tiny buffer cache")
	}
	for i := 0; i < n; i += 37 {
		v, err := bt.Search(tuple.EncodeUint64(uint64(i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: wrong value %q", i, v)
		}
	}
}

func TestBTreeBulkLoad(t *testing.T) {
	bt := newTestBTree(t, 0)
	loader, err := bt.NewBulkLoader(0.9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := loader.Add(tuple.EncodeUint64(uint64(i)), tuple.EncodeUint64(uint64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := loader.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 113 {
		v, err := bt.Search(tuple.EncodeUint64(uint64(i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if tuple.DecodeUint64(v) != uint64(i*i) {
			t.Fatalf("key %d: wrong value", i)
		}
	}
	// Scan must return all keys in order.
	c, err := bt.ScanFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count := 0
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if tuple.DecodeUint64(k) != uint64(count) {
			t.Fatalf("scan key %d out of sequence", count)
		}
		count++
	}
	if count != n {
		t.Fatalf("bulk-loaded scan count %d want %d", count, n)
	}
}

func TestBTreeBulkLoadRejectsOutOfOrder(t *testing.T) {
	bt := newTestBTree(t, 0)
	loader, _ := bt.NewBulkLoader(1.0)
	if err := loader.Add(tuple.EncodeUint64(10), nil); err != nil {
		t.Fatal(err)
	}
	if err := loader.Add(tuple.EncodeUint64(5), nil); err == nil {
		t.Fatal("expected out-of-order error")
	}
}

func TestBTreeEmptyScan(t *testing.T) {
	bt := newTestBTree(t, 0)
	c, err := bt.ScanFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, ok := c.Next(); ok {
		t.Fatal("empty tree scan returned a record")
	}
}

// TestBTreeQuickVsModel drives random operation sequences against the tree
// and a model map and requires identical behaviour.
func TestBTreeQuickVsModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bc := NewBufferCache(1024, memory.NewBudget("q", 16*1024))
		bt, err := CreateBTree(bc, filepath.Join(t.TempDir(), fmt.Sprintf("q%d.btree", seed)))
		if err != nil {
			t.Fatal(err)
		}
		defer bt.Close()
		model := map[uint64][]byte{}
		for op := 0; op < 800; op++ {
			k := uint64(rng.Intn(200))
			switch rng.Intn(3) {
			case 0, 1: // insert/update
				v := make([]byte, rng.Intn(60))
				rng.Read(v)
				if err := bt.Insert(tuple.EncodeUint64(k), v); err != nil {
					t.Fatalf("insert: %v", err)
				}
				model[k] = v
			case 2: // delete
				ok, err := bt.Delete(tuple.EncodeUint64(k))
				if err != nil {
					t.Fatalf("delete: %v", err)
				}
				_, inModel := model[k]
				if ok != inModel {
					t.Fatalf("delete(%d) = %v, model has %v", k, ok, inModel)
				}
				delete(model, k)
			}
		}
		// Compare full contents via scan.
		var modelKeys []uint64
		for k := range model {
			modelKeys = append(modelKeys, k)
		}
		sort.Slice(modelKeys, func(i, j int) bool { return modelKeys[i] < modelKeys[j] })
		c, err := bt.ScanFrom(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		i := 0
		for {
			k, v, ok := c.Next()
			if !ok {
				break
			}
			if i >= len(modelKeys) {
				t.Fatalf("tree has extra key %d", tuple.DecodeUint64(k))
			}
			if tuple.DecodeUint64(k) != modelKeys[i] {
				t.Fatalf("key mismatch at %d: tree %d model %d", i, tuple.DecodeUint64(k), modelKeys[i])
			}
			if !bytes.Equal(v, model[modelKeys[i]]) {
				t.Fatalf("value mismatch for key %d", modelKeys[i])
			}
			i++
		}
		if i != len(modelKeys) {
			t.Fatalf("tree has %d keys, model %d", i, len(modelKeys))
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

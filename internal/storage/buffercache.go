// Package storage implements the disk-resident access methods used by
// Pregelix to store the Vertex relation and operator intermediates: a
// buffer cache with LRU replacement, a B+tree, an LSM B-tree, and
// sequential run files.
//
// These mirror the Hyracks storage library the paper leverages
// (Section 4 "Access methods" and Section 5.4 "Memory Management"): the
// buffer cache caches partition pages and gracefully spills to disk when
// its metered budget is exhausted, which is what lets the physical plans
// above it run out-of-core workloads transparently.
package storage

import (
	"container/list"
	"fmt"
	"os"
	"sync"

	"pregelix/internal/memory"
)

// DefaultPageSize is the page size used by indexes unless configured
// otherwise.
const DefaultPageSize = 8192

// FileID identifies a file registered with a BufferCache.
type FileID int32

// PageNum is a zero-based page index within a file.
type PageNum int32

type pageKey struct {
	fid FileID
	pn  PageNum
}

// PageFrame is an in-memory copy of one disk page, pinned by at most a few
// short-lived operations at a time.
type PageFrame struct {
	Data    []byte
	fid     FileID
	pn      PageNum
	pins    int
	dirty   bool
	metered bool
	elem    *list.Element
}

// PageNum returns the page number this frame caches.
func (p *PageFrame) PageNum() PageNum { return p.pn }

type fileState struct {
	f        *os.File
	path     string
	numPages PageNum
}

// BufferCache mediates all page I/O for index files. It holds at most the
// number of frames its memory budget allows, evicting the least recently
// used unpinned frame (writing it back if dirty) to make room. When every
// frame is pinned it temporarily exceeds the budget rather than deadlock,
// counting the overflow.
type BufferCache struct {
	PageSize int

	mu       sync.Mutex
	budget   *memory.Budget
	frames   map[pageKey]*PageFrame
	lru      *list.List // front = most recent; holds unpinned frames only
	files    map[FileID]*fileState
	nextFile FileID

	// Stats.
	Hits, Misses, Evictions, Writebacks, Overflows int64
}

// NewBufferCache creates a cache whose total frame memory is metered
// against budget (nil or unlimited budget means no cap).
func NewBufferCache(pageSize int, budget *memory.Budget) *BufferCache {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if budget == nil {
		budget = memory.NewBudget("buffercache", 0)
	}
	return &BufferCache{
		PageSize: pageSize,
		budget:   budget,
		frames:   make(map[pageKey]*PageFrame),
		lru:      list.New(),
		files:    make(map[FileID]*fileState),
	}
}

// OpenFile registers the file at path, creating it if needed, and returns
// its handle.
func (bc *BufferCache) OpenFile(path string) (FileID, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("buffercache: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.nextFile++
	fid := bc.nextFile
	bc.files[fid] = &fileState{
		f:        f,
		path:     path,
		numPages: PageNum(st.Size() / int64(bc.PageSize)),
	}
	return fid, nil
}

// NumPages returns the current page count of the file.
func (bc *BufferCache) NumPages(fid FileID) PageNum {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if fs, ok := bc.files[fid]; ok {
		return fs.numPages
	}
	return 0
}

// Pin fetches the page into memory and pins it. The caller must Unpin it.
func (bc *BufferCache) Pin(fid FileID, pn PageNum) (*PageFrame, error) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	key := pageKey{fid, pn}
	if fr, ok := bc.frames[key]; ok {
		bc.Hits++
		bc.pinLocked(fr)
		return fr, nil
	}
	bc.Misses++
	fs, ok := bc.files[fid]
	if !ok {
		return nil, fmt.Errorf("buffercache: pin on closed file %d", fid)
	}
	if pn >= fs.numPages {
		return nil, fmt.Errorf("buffercache: page %d beyond EOF (%d pages) in %s", pn, fs.numPages, fs.path)
	}
	fr, err := bc.allocFrameLocked(fid, pn)
	if err != nil {
		return nil, err
	}
	if _, err := fs.f.ReadAt(fr.Data, int64(pn)*int64(bc.PageSize)); err != nil {
		bc.dropFrameLocked(fr)
		return nil, fmt.Errorf("buffercache: read %s page %d: %w", fs.path, pn, err)
	}
	return fr, nil
}

// NewPage appends a fresh zeroed page to the file and returns it pinned.
func (bc *BufferCache) NewPage(fid FileID) (*PageFrame, error) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	fs, ok := bc.files[fid]
	if !ok {
		return nil, fmt.Errorf("buffercache: new page on closed file %d", fid)
	}
	pn := fs.numPages
	fs.numPages++
	fr, err := bc.allocFrameLocked(fid, pn)
	if err != nil {
		return nil, err
	}
	fr.dirty = true
	return fr, nil
}

// Unpin releases one pin; dirty marks the frame as modified so eviction
// writes it back.
func (bc *BufferCache) Unpin(fr *PageFrame, dirty bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins < 0 {
		panic("buffercache: unpin without pin")
	}
	if fr.pins == 0 {
		fr.elem = bc.lru.PushFront(fr)
	}
}

// FlushFile writes back all dirty pages of the file.
func (bc *BufferCache) FlushFile(fid FileID) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for key, fr := range bc.frames {
		if key.fid == fid && fr.dirty {
			if err := bc.writebackLocked(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloseFile flushes and forgets the file's pages and closes the handle.
func (bc *BufferCache) CloseFile(fid FileID) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	fs, ok := bc.files[fid]
	if !ok {
		return nil
	}
	for key, fr := range bc.frames {
		if key.fid != fid {
			continue
		}
		if fr.dirty {
			if err := bc.writebackLocked(fr); err != nil {
				return err
			}
		}
		bc.dropFrameLocked(fr)
	}
	delete(bc.files, fid)
	return fs.f.Close()
}

// DeleteFile closes the file and removes it from disk, discarding dirty
// pages.
func (bc *BufferCache) DeleteFile(fid FileID) error {
	bc.mu.Lock()
	fs, ok := bc.files[fid]
	if !ok {
		bc.mu.Unlock()
		return nil
	}
	for key, fr := range bc.frames {
		if key.fid == fid {
			bc.dropFrameLocked(fr)
		}
	}
	delete(bc.files, fid)
	bc.mu.Unlock()
	fs.f.Close()
	return os.Remove(fs.path)
}

// PinnedFrames returns the number of frames currently pinned across all
// files. Tests assert it returns to zero after every operation — the
// buffer-cache analogue of the frame-lease checks in internal/tuple —
// so a cursor error path that strands a pin is caught immediately.
func (bc *BufferCache) PinnedFrames() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	n := 0
	for _, fr := range bc.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

// Path returns the on-disk path of the file.
func (bc *BufferCache) Path(fid FileID) string {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if fs, ok := bc.files[fid]; ok {
		return fs.path
	}
	return ""
}

func (bc *BufferCache) pinLocked(fr *PageFrame) {
	if fr.pins == 0 && fr.elem != nil {
		bc.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// allocFrameLocked finds memory for a new frame, evicting LRU unpinned
// frames as needed, and registers it pinned.
func (bc *BufferCache) allocFrameLocked(fid FileID, pn PageNum) (*PageFrame, error) {
	metered := true
	for !bc.budget.TryAllocate(int64(bc.PageSize)) {
		if !bc.evictOneLocked() {
			// Everything is pinned: exceed the budget rather than
			// deadlock; this models a transient working-set spike.
			bc.Overflows++
			metered = false
			break
		}
	}
	fr := &PageFrame{
		Data:    make([]byte, bc.PageSize),
		fid:     fid,
		pn:      pn,
		pins:    1,
		metered: metered,
	}
	bc.frames[pageKey{fid, pn}] = fr
	return fr, nil
}

func (bc *BufferCache) evictOneLocked() bool {
	e := bc.lru.Back()
	if e == nil {
		return false
	}
	fr := e.Value.(*PageFrame)
	if fr.dirty {
		if err := bc.writebackLocked(fr); err != nil {
			// Leave the frame in place; caller will overflow.
			return false
		}
	}
	bc.dropFrameLocked(fr)
	bc.Evictions++
	return true
}

func (bc *BufferCache) writebackLocked(fr *PageFrame) error {
	fs, ok := bc.files[fr.fid]
	if !ok {
		return fmt.Errorf("buffercache: writeback to closed file %d", fr.fid)
	}
	if _, err := fs.f.WriteAt(fr.Data, int64(fr.pn)*int64(bc.PageSize)); err != nil {
		return fmt.Errorf("buffercache: writeback %s page %d: %w", fs.path, fr.pn, err)
	}
	bc.Writebacks++
	fr.dirty = false
	return nil
}

func (bc *BufferCache) dropFrameLocked(fr *PageFrame) {
	if fr.elem != nil {
		bc.lru.Remove(fr.elem)
		fr.elem = nil
	}
	delete(bc.frames, pageKey{fr.fid, fr.pn})
	if fr.metered {
		bc.budget.Release(int64(bc.PageSize))
	}
}

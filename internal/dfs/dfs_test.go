package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func newFS(t *testing.T, nodes int, opts Options) *FileSystem {
	t.Helper()
	base := t.TempDir()
	var dns []*Datanode
	for i := 0; i < nodes; i++ {
		dns = append(dns, &Datanode{
			Name: fmt.Sprintf("dn%d", i+1),
			Dir:  filepath.Join(base, fmt.Sprintf("dn%d", i+1)),
		})
	}
	fs, err := New(dns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, 3, Options{BlockSize: 1024, Replication: 2})
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteFile("/graphs/webmap", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/graphs/webmap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	sz, err := fs.Size("/graphs/webmap")
	if err != nil || sz != int64(len(data)) {
		t.Fatalf("size %d err %v", sz, err)
	}
}

func TestSmallAndEmptyFiles(t *testing.T) {
	fs := newFS(t, 2, Options{BlockSize: 1 << 20})
	if err := fs.WriteFile("/a", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a")
	if err != nil || string(got) != "hi" {
		t.Fatalf("%q %v", got, err)
	}
	got, err = fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("%q %v", got, err)
	}
}

func TestOverwriteReplacesContent(t *testing.T) {
	fs := newFS(t, 2, Options{BlockSize: 64})
	if err := fs.WriteFile("/f", bytes.Repeat([]byte("a"), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || string(got) != "short" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestReplicaFailover(t *testing.T) {
	fs := newFS(t, 3, Options{BlockSize: 512, Replication: 2})
	data := make([]byte, 5000)
	rand.New(rand.NewSource(2)).Read(data)
	if err := fs.WriteFile("/ckpt/vertex", data); err != nil {
		t.Fatal(err)
	}
	// Take down one node; every block still has a live replica.
	fs.SetNodeDown("dn2", true)
	got, err := fs.ReadFile("/ckpt/vertex")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read mismatch")
	}
}

func TestReadFailsWhenAllReplicasDown(t *testing.T) {
	fs := newFS(t, 2, Options{BlockSize: 512, Replication: 1})
	if err := fs.WriteFile("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	fs.SetNodeDown("dn1", true)
	fs.SetNodeDown("dn2", true)
	if _, err := fs.ReadFile("/f"); err == nil {
		t.Fatal("expected read failure with all replicas down")
	}
}

func TestListAndRemove(t *testing.T) {
	fs := newFS(t, 1, Options{})
	for _, p := range []string{"/jobs/1/out", "/jobs/2/out", "/other"} {
		if err := fs.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/jobs/")
	if len(got) != 2 || got[0] != "/jobs/1/out" || got[1] != "/jobs/2/out" {
		t.Fatalf("list: %v", got)
	}
	if err := fs.Remove("/jobs/1/out"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/jobs/1/out") {
		t.Fatal("file still exists after remove")
	}
	if _, err := fs.Open("/jobs/1/out"); err == nil {
		t.Fatal("open of removed file must fail")
	}
}

func TestBlockLocationsReportLiveness(t *testing.T) {
	fs := newFS(t, 3, Options{BlockSize: 100, Replication: 2})
	if err := fs.WriteFile("/f", make([]byte, 450)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 5 {
		t.Fatalf("expected 5 blocks, got %d", len(locs))
	}
	for i, l := range locs {
		if len(l) != 2 {
			t.Fatalf("block %d: %d replicas", i, len(l))
		}
	}
	fs.SetNodeDown("dn1", true)
	locs, _ = fs.BlockLocations("/f")
	for _, l := range locs {
		for _, n := range l {
			if n == "dn1" {
				t.Fatal("down node listed as location")
			}
		}
	}
}

package dfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersWriters exercises the namespace under parallel
// access (the checkpoint path writes per-partition files concurrently
// with GS reads).
func TestConcurrentReadersWriters(t *testing.T) {
	fs := newFS(t, 3, Options{BlockSize: 512, Replication: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w)}, 3000)
			path := fmt.Sprintf("/ckpt/part-%d", w)
			for i := 0; i < 10; i++ {
				if err := fs.WriteFile(path, data); err != nil {
					t.Error(err)
					return
				}
				got, err := fs.ReadFile(path)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("worker %d: corrupted read", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := fs.List("/ckpt/"); len(got) != 8 {
		t.Fatalf("list: %v", got)
	}
}

func TestWriterRespectsRemovalMidWrite(t *testing.T) {
	fs := newFS(t, 1, Options{BlockSize: 64})
	w, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	// Completing the write must fail rather than resurrect the file.
	if _, err := w.Write(bytes.Repeat([]byte{1}, 100)); err == nil {
		if err := w.Close(); err == nil {
			t.Fatal("write to removed file succeeded")
		}
	}
}

package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durableNodes builds a fixed datanode layout under base so a second
// FileSystem can be opened over the same directories, simulating a
// master restart.
func durableNodes(base string, n int) []*Datanode {
	var dns []*Datanode
	for i := 0; i < n; i++ {
		dns = append(dns, &Datanode{
			Name: fmt.Sprintf("dn%d", i+1),
			Dir:  filepath.Join(base, fmt.Sprintf("dn%d", i+1)),
		})
	}
	return dns
}

// TestNamespaceSurvivesRestart writes, renames, and removes files on a
// durable file system, then reopens it from the same directories and
// requires the namespace — contents, sizes, absences — to match.
func TestNamespaceSurvivesRestart(t *testing.T) {
	base := t.TempDir()
	opts := Options{BlockSize: 1024, Replication: 2, MetaDir: filepath.Join(base, "meta")}

	fs, err := New(durableNodes(base, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 10_000)
	rand.New(rand.NewSource(7)).Read(big)
	if err := fs.WriteFile("/ckpt/ss2/vertex-p0", big); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/ckpt/ss2/manifest.json.tmp", []byte(`{"superstep":2}`)); err != nil {
		t.Fatal(err)
	}
	// The checkpoint commit protocol: staged write + atomic rename.
	if err := fs.Rename("/ckpt/ss2/manifest.json.tmp", "/ckpt/ss2/manifest.json"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/doomed", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}

	// "Restart" the master: a fresh FileSystem over the same dirs.
	fs2, err := New(durableNodes(base, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/ckpt/ss2/vertex-p0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("block data did not survive restart")
	}
	m, err := fs2.ReadFile("/ckpt/ss2/manifest.json")
	if err != nil || string(m) != `{"superstep":2}` {
		t.Fatalf("manifest after restart: %q %v", m, err)
	}
	if fs2.Exists("/ckpt/ss2/manifest.json.tmp") {
		t.Fatal("renamed-away staging path resurrected")
	}
	if fs2.Exists("/doomed") {
		t.Fatal("removed file resurrected")
	}
	if list := fs2.List("/ckpt/"); len(list) != 2 {
		t.Fatalf("List after restart = %v", list)
	}

	// The reloaded namespace keeps allocating fresh block IDs: new
	// writes must not collide with surviving blocks.
	if err := fs2.WriteFile("/ckpt/ss4/vertex-p0", []byte("later")); err != nil {
		t.Fatal(err)
	}
	got, err = fs2.ReadFile("/ckpt/ss2/vertex-p0")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("old blocks clobbered by post-restart writes: %v", err)
	}
}

// TestNamespacePersistEachBlock crashes "mid-file": only blocks flushed
// before the crash are visible after reopen, and a reader never sees a
// namespace pointing at unwritten data.
func TestNamespacePersistEachBlock(t *testing.T) {
	base := t.TempDir()
	opts := Options{BlockSize: 64, Replication: 1, MetaDir: filepath.Join(base, "meta")}
	fs, err := New(durableNodes(base, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("/partial")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte("x"), 200)); err != nil {
		t.Fatal(err)
	}
	// No Close: the writer dies here. 3 full 64-byte blocks flushed.
	fs2, err := New(durableNodes(base, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/partial")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 192 || !bytes.Equal(got, bytes.Repeat([]byte("x"), 192)) {
		t.Fatalf("partial file after crash: %d bytes", len(got))
	}
}

// TestNamespaceCorruptionRejected: a mangled namespace file must fail
// loudly at open, not silently start empty over live block data.
func TestNamespaceCorruptionRejected(t *testing.T) {
	base := t.TempDir()
	meta := filepath.Join(base, "meta")
	opts := Options{MetaDir: meta}
	fs, err := New(durableNodes(base, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(meta, "namespace.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(durableNodes(base, 2), opts); err == nil || !strings.Contains(err.Error(), "namespace corrupt") {
		t.Fatalf("corrupt namespace opened without error: %v", err)
	}
}

// TestEphemeralUnchanged: without MetaDir no namespace file appears and
// a reopen starts empty — the pre-durability contract.
func TestEphemeralUnchanged(t *testing.T) {
	base := t.TempDir()
	fs, err := New(durableNodes(base, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	fs2, err := New(durableNodes(base, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Exists("/a") {
		t.Fatal("ephemeral namespace leaked across instances")
	}
}

// Package dfs implements a small replicated distributed file system in
// the role HDFS plays for Pregelix: it stores the input graph, the
// dumped results, the single-tuple global state (GS) relation, and
// checkpoints (Sections 5.2, 5.5).
//
// A FileSystem has a master namespace (in memory) and a set of datanodes
// (local directories, co-located with cluster node controllers). Files
// are split into fixed-size blocks, each replicated on `replication`
// datanodes; reads fall over to surviving replicas when a datanode is
// down, which is what lets checkpoint recovery proceed after a machine
// failure.
package dfs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultBlockSize is the block size used unless configured otherwise.
const DefaultBlockSize = 4 << 20

// Datanode is one storage host for the file system.
type Datanode struct {
	Name string
	Dir  string
	down bool
}

// FileSystem is the master: namespace plus block placement.
type FileSystem struct {
	mu          sync.RWMutex
	nodes       []*Datanode
	blockSize   int64
	replication int
	files       map[string]*fileMeta
	nextBlock   int64
	rr          int
	metaPath    string // when non-empty, namespace persisted here
}

type fileMeta struct {
	blocks []*blockMeta
	size   int64
}

type blockMeta struct {
	id       int64
	size     int64
	replicas []int // datanode indices
}

// Options configures a FileSystem.
type Options struct {
	BlockSize   int64
	Replication int
	// MetaDir, when set, makes the master namespace durable: every
	// namespace mutation (create, rename, remove, block append) is
	// written to <MetaDir>/namespace.json via a staged write + rename,
	// and New reloads it, re-adopting the block files already sitting
	// in the datanode directories. Without it the namespace dies with
	// the process (the pre-durability behavior).
	MetaDir string
}

// New creates a file system over the given datanode directories.
func New(nodes []*Datanode, opts Options) (*FileSystem, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dfs: no datanodes")
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.Replication <= 0 {
		opts.Replication = 1
	}
	if opts.Replication > len(nodes) {
		opts.Replication = len(nodes)
	}
	for _, n := range nodes {
		if err := os.MkdirAll(filepath.Join(n.Dir, "blocks"), 0o755); err != nil {
			return nil, err
		}
	}
	fs := &FileSystem{
		nodes:       nodes,
		blockSize:   opts.BlockSize,
		replication: opts.Replication,
		files:       make(map[string]*fileMeta),
	}
	if opts.MetaDir != "" {
		if err := os.MkdirAll(opts.MetaDir, 0o755); err != nil {
			return nil, err
		}
		fs.metaPath = filepath.Join(opts.MetaDir, "namespace.json")
		if err := fs.loadNamespace(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// persistedNamespace is the on-disk form of the master's metadata.
// Block contents live in the datanode directories and are immutable
// once written, so the namespace file plus the block files reconstruct
// the whole file system after a master restart.
type persistedNamespace struct {
	NextBlock int64                    `json:"nextBlock"`
	Files     map[string]persistedFile `json:"files"`
}

type persistedFile struct {
	Size   int64            `json:"size"`
	Blocks []persistedBlock `json:"blocks"`
}

type persistedBlock struct {
	ID       int64 `json:"id"`
	Size     int64 `json:"size"`
	Replicas []int `json:"replicas"`
}

// loadNamespace restores the namespace from metaPath, if present.
func (fs *FileSystem) loadNamespace() error {
	data, err := os.ReadFile(fs.metaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var ns persistedNamespace
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("dfs: namespace corrupt: %w", err)
	}
	fs.nextBlock = ns.NextBlock
	for path, pf := range ns.Files {
		fm := &fileMeta{size: pf.Size}
		for _, pb := range pf.Blocks {
			b := &blockMeta{id: pb.ID, size: pb.Size}
			for _, r := range pb.Replicas {
				if r >= 0 && r < len(fs.nodes) {
					b.replicas = append(b.replicas, r)
				}
			}
			fm.blocks = append(fm.blocks, b)
		}
		fs.files[path] = fm
	}
	return nil
}

// persistLocked writes the namespace to metaPath (staged + renamed so a
// crash mid-write leaves the previous snapshot intact). Callers hold
// fs.mu for writing. No-op when the file system is not durable.
func (fs *FileSystem) persistLocked() error {
	if fs.metaPath == "" {
		return nil
	}
	ns := persistedNamespace{NextBlock: fs.nextBlock, Files: make(map[string]persistedFile, len(fs.files))}
	for path, fm := range fs.files {
		pf := persistedFile{Size: fm.size, Blocks: make([]persistedBlock, 0, len(fm.blocks))}
		for _, b := range fm.blocks {
			pf.Blocks = append(pf.Blocks, persistedBlock{ID: b.id, Size: b.size, Replicas: b.replicas})
		}
		ns.Files[path] = pf
	}
	data, err := json.Marshal(&ns)
	if err != nil {
		return err
	}
	tmp := fs.metaPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dfs: persist namespace: %w", err)
	}
	if err := os.Rename(tmp, fs.metaPath); err != nil {
		return fmt.Errorf("dfs: persist namespace: %w", err)
	}
	return nil
}

// SetNodeDown marks a datanode as unavailable (failure injection).
func (fs *FileSystem) SetNodeDown(name string, down bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, n := range fs.nodes {
		if n.Name == name {
			n.down = down
		}
	}
}

func (fs *FileSystem) blockPath(nodeIdx int, id int64) string {
	return filepath.Join(fs.nodes[nodeIdx].Dir, "blocks", fmt.Sprintf("blk_%d", id))
}

// Create opens a new file for writing, replacing any existing file.
func (fs *FileSystem) Create(path string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[path]; ok {
		fs.removeBlocksLocked(old)
	}
	fs.files[path] = &fileMeta{}
	if err := fs.persistLocked(); err != nil {
		return nil, err
	}
	return &Writer{fs: fs, path: path}, nil
}

// Exists reports whether the file is in the namespace.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the file's length in bytes.
func (fs *FileSystem) Size(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fm, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: no such file", path)
	}
	return fm.size, nil
}

// List returns the paths under the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Rename atomically moves a file to a new path in the namespace,
// replacing any existing file there. Blocks are untouched — only the
// master's metadata changes — so the swap is a single atomic step.
// Checkpoint commits rely on this: the manifest is staged under a
// temporary name and renamed into place only once every partition image
// is durably written, so a crash mid-checkpoint can never leave a
// manifest that points at missing data, and the previous committed
// manifest stays intact until the instant the new one replaces it.
func (fs *FileSystem) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fm, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("dfs: %s: no such file", oldPath)
	}
	if victim, ok := fs.files[newPath]; ok && victim != fm {
		fs.removeBlocksLocked(victim)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = fm
	return fs.persistLocked()
}

// Replication returns the effective replication factor.
func (fs *FileSystem) Replication() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.replication
}

// Remove deletes a file and its blocks.
func (fs *FileSystem) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fm, ok := fs.files[path]
	if !ok {
		return nil
	}
	fs.removeBlocksLocked(fm)
	delete(fs.files, path)
	return fs.persistLocked()
}

func (fs *FileSystem) removeBlocksLocked(fm *fileMeta) {
	for _, b := range fm.blocks {
		for _, r := range b.replicas {
			os.Remove(fs.blockPath(r, b.id))
		}
	}
}

// BlockLocations returns, per block, the datanode names holding live
// replicas — the locality information Pregelix's scheduler exploits when
// placing graph-loading scan tasks.
func (fs *FileSystem) BlockLocations(path string) ([][]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fm, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	out := make([][]string, len(fm.blocks))
	for i, b := range fm.blocks {
		for _, r := range b.replicas {
			if !fs.nodes[r].down {
				out[i] = append(out[i], fs.nodes[r].Name)
			}
		}
	}
	return out, nil
}

// Writer streams a file into replicated blocks.
type Writer struct {
	fs   *FileSystem
	path string
	buf  bytes.Buffer
	err  error
}

// Write appends to the file, cutting blocks at the block size.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.buf.Write(p)
	for int64(w.buf.Len()) >= w.fs.blockSize {
		if err := w.flushBlock(w.fs.blockSize); err != nil {
			w.err = err
			return 0, err
		}
	}
	return len(p), nil
}

func (w *Writer) flushBlock(n int64) error {
	data := w.buf.Next(int(n))
	fs := w.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fm, ok := fs.files[w.path]
	if !ok {
		return fmt.Errorf("dfs: %s removed while writing", w.path)
	}
	fs.nextBlock++
	b := &blockMeta{id: fs.nextBlock, size: int64(len(data))}
	// Choose replica nodes round-robin among live datanodes.
	var live []int
	for i, nd := range fs.nodes {
		if !nd.down {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("dfs: no live datanodes")
	}
	reps := fs.replication
	if reps > len(live) {
		reps = len(live)
	}
	for i := 0; i < reps; i++ {
		idx := live[(fs.rr+i)%len(live)]
		if err := os.WriteFile(fs.blockPath(idx, b.id), data, 0o644); err != nil {
			return fmt.Errorf("dfs: write block: %w", err)
		}
		b.replicas = append(b.replicas, idx)
	}
	fs.rr++
	fm.blocks = append(fm.blocks, b)
	fm.size += b.size
	return fs.persistLocked()
}

// Close flushes the final partial block.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	for w.buf.Len() > 0 {
		n := int64(w.buf.Len())
		if n > w.fs.blockSize {
			n = w.fs.blockSize
		}
		if err := w.flushBlock(n); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Open returns a reader over the whole file, transparently failing over
// to surviving replicas.
func (fs *FileSystem) Open(path string) (*Reader, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fm, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	// Snapshot block list; block contents are immutable once written.
	blocks := append([]*blockMeta(nil), fm.blocks...)
	return &Reader{fs: fs, blocks: blocks}, nil
}

// Reader streams a file's blocks in order.
type Reader struct {
	fs     *FileSystem
	blocks []*blockMeta
	idx    int
	cur    *bytes.Reader
}

// Read implements io.Reader with replica failover per block.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil && r.cur.Len() > 0 {
			return r.cur.Read(p)
		}
		if r.idx >= len(r.blocks) {
			return 0, io.EOF
		}
		b := r.blocks[r.idx]
		r.idx++
		data, err := r.fs.readBlock(b)
		if err != nil {
			return 0, err
		}
		r.cur = bytes.NewReader(data)
	}
}

func (fs *FileSystem) readBlock(b *blockMeta) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var lastErr error
	for _, rIdx := range b.replicas {
		if fs.nodes[rIdx].down {
			lastErr = fmt.Errorf("dfs: replica node %s down", fs.nodes[rIdx].Name)
			continue
		}
		data, err := os.ReadFile(fs.blockPath(rIdx, b.id))
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dfs: block %d has no replicas", b.id)
	}
	return nil, lastErr
}

// WriteFile is a convenience that writes data as a whole file.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// ReadFile is a convenience that reads a whole file.
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"pregelix/internal/hyracks"
	"pregelix/internal/tuple"
)

// wireShuffle runs the standard shuffle spec over a ForceWire transport
// with the given compression mode and returns the collector plus the
// connector stats.
func wireShuffle(t *testing.T, name string, mode tuple.CompressMode) (*shuffleCollector, *hyracks.ConnStats) {
	t.Helper()
	const senders, receivers, perSender = 4, 4, 5000
	cluster := testCluster(t, senders)
	tr, err := NewTCPTransport(Config{
		ListenAddr: "127.0.0.1:0",
		ForceWire:  true,
		Compress:   mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	local := nodeSet(cluster, 0, senders)
	peers := make(map[hyracks.NodeID]string)
	for id := range local {
		peers[id] = tr.Addr()
	}
	tr.SetPeers(peers, local)
	col := &shuffleCollector{}
	res, err := hyracks.RunJobWith(context.Background(), cluster,
		shuffleSpec(name, senders, receivers, perSender, false, col),
		hyracks.ExecOptions{Transport: tr, LocalNodes: local})
	if err != nil {
		t.Fatal(err)
	}
	return col, res.ConnStats["src->sink"]
}

// TestCompressedShuffleParity runs the same shuffle with every
// compression mode and requires identical results, with flate and auto
// shipping measurably fewer wire bytes than off.
func TestCompressedShuffleParity(t *testing.T) {
	offCol, offStats := wireShuffle(t, "shuffle-comp-off", tuple.CompressOff)
	if offStats.WireBytes() == 0 {
		t.Fatal("wire run recorded no on-wire bytes")
	}
	for _, mode := range []tuple.CompressMode{tuple.CompressFlate, tuple.CompressAuto} {
		col, stats := wireShuffle(t, "shuffle-comp-"+mode.String(), mode)
		if col.count != offCol.count || col.sum != offCol.sum {
			t.Fatalf("%v saw (%d tuples, sum %d), off saw (%d, %d)",
				mode, col.count, col.sum, offCol.count, offCol.sum)
		}
		if stats.Tuples() != offStats.Tuples() || stats.Bytes() != offStats.Bytes() {
			t.Fatalf("%v payload stats diverge: (%d tuples, %d bytes) vs off (%d, %d)",
				mode, stats.Tuples(), stats.Bytes(), offStats.Tuples(), offStats.Bytes())
		}
		// The shuffle's sequential-vid + constant-payload tuples must
		// compress by well over the 30%% acceptance bar.
		if w, o := stats.WireBytes(), offStats.WireBytes(); w*10 > o*7 {
			t.Fatalf("%v shipped %d wire bytes, off shipped %d — less than 30%% saved", mode, w, o)
		}
	}
}

// TestMixedCompressionNegotiation splits the shuffle across two
// processes where only one compresses: every stream must downgrade to
// raw frames and the job must still produce exact results — the
// OPEN-negotiation interop the mixed-cluster test exercises end to end
// at the core layer.
func TestMixedCompressionNegotiation(t *testing.T) {
	cases := []struct {
		name         string
		modeA, modeB tuple.CompressMode
	}{
		{"compressing-sender-raw-receiver", tuple.CompressAuto, tuple.CompressOff},
		{"raw-sender-compressing-receiver", tuple.CompressOff, tuple.CompressAuto},
		{"both-compressing", tuple.CompressFlate, tuple.CompressAuto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const senders, receivers, perSender = 4, 4, 4000
			dirA, dirB := t.TempDir(), t.TempDir()
			clusterA, err := hyracks.NewCluster(dirA, senders, hyracks.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			clusterB, err := hyracks.NewCluster(dirB, senders, hyracks.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			localA := nodeSet(clusterA, 0, senders/2)
			localB := nodeSet(clusterB, senders/2, senders)
			trA, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", Compress: tc.modeA})
			if err != nil {
				t.Fatal(err)
			}
			defer trA.Close()
			trB, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", Compress: tc.modeB})
			if err != nil {
				t.Fatal(err)
			}
			defer trB.Close()
			peers := make(map[hyracks.NodeID]string)
			for id := range localA {
				peers[id] = trA.Addr()
			}
			for id := range localB {
				peers[id] = trB.Addr()
			}
			trA.SetPeers(peers, localA)
			trB.SetPeers(peers, localB)

			col := &shuffleCollector{byPart: make(map[int]int)}
			specName := "mixed-" + tc.name
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, errs[0] = hyracks.RunJobWith(context.Background(), clusterA,
					shuffleSpec(specName, senders, receivers, perSender, false, col),
					hyracks.ExecOptions{Transport: trA, LocalNodes: localA})
			}()
			go func() {
				defer wg.Done()
				_, errs[1] = hyracks.RunJobWith(context.Background(), clusterB,
					shuffleSpec(specName, senders, receivers, perSender, false, col),
					hyracks.ExecOptions{Transport: trB, LocalNodes: localB})
			}()
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("process %d: %v", i, err)
				}
			}
			n := senders * perSender
			if col.count != n {
				t.Fatalf("received %d tuples, want %d", col.count, n)
			}
			if want := uint64(n) * uint64(n-1) / 2; col.sum != want {
				t.Fatalf("checksum %d, want %d", col.sum, want)
			}
		})
	}
}

// dialData opens a raw data-plane connection speaking the protocol by
// hand, so malformed messages can be injected.
func dialData(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte(dataMagic)); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestCorruptCompressedFrameDropsConn handshakes a compressed stream by
// hand, sends a DATA message whose flate body is garbage, and requires
// the receiver to drop the connection instead of delivering a bogus
// frame (or crashing).
func TestCorruptCompressedFrameDropsConn(t *testing.T) {
	recvT, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", Compress: tuple.CompressAuto})
	if err != nil {
		t.Fatal(err)
	}
	defer recvT.Close()
	sender, receiver := hyracks.NodeID("nc1"), hyracks.NodeID("nc2")
	recvT.SetPeers(map[hyracks.NodeID]string{sender: "", receiver: recvT.Addr()},
		map[hyracks.NodeID]bool{receiver: true})
	rc, err := recvT.OpenConn(hyracks.ConnPlacement{
		ID:            hyracks.ConnID{Job: "corrupt-job", Conn: "a->b"},
		Senders:       1,
		Receivers:     1,
		BufferFrames:  2,
		SenderNodes:   []hyracks.NodeID{sender},
		ReceiverNodes: []hyracks.NodeID{receiver},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	conn := dialData(t, recvT.Addr())
	open, _ := json.Marshal(openInfo{Job: "corrupt-job", Conn: "a->b", Sender: 0, Receiver: 0, Buffer: 2, Comp: "auto"})
	var hdr [9]byte
	writeRaw := func(typ byte, stream uint32, payload []byte) {
		hdr[0] = typ
		binary.LittleEndian.PutUint32(hdr[1:], stream)
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
		if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw(msgOpen, 1, open)

	// The initial CREDIT must answer the proposal with accept=1.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var chdr [9]byte
	if _, err := io.ReadFull(conn, chdr[:]); err != nil {
		t.Fatalf("no initial credit: %v", err)
	}
	if chdr[0] != msgCredit {
		t.Fatalf("expected CREDIT, got type %d", chdr[0])
	}
	clen := binary.LittleEndian.Uint32(chdr[5:])
	if clen != 5 {
		t.Fatalf("initial credit payload is %d bytes, want 5 (accept byte)", clen)
	}
	cp := make([]byte, clen)
	if _, err := io.ReadFull(conn, cp); err != nil {
		t.Fatal(err)
	}
	if cp[4] != 1 {
		t.Fatalf("compressing receiver declined the proposal (accept byte %d)", cp[4])
	}

	// Garbage flate body: the demultiplexer must kill the connection.
	writeRaw(msgData, 1, append([]byte{tuple.EncFlate}, []byte("this is not a deflate stream")...))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still alive after corrupt compressed frame")
	}
}

// incompressibleShuffle shuffles tuples the codec can do nothing with —
// pseudorandom 256-byte values under multiplicatively scrambled vids, so
// frames are neither delta-eligible nor deflate-compressible — and
// returns the shuffle wall time plus the connector stats. This is the
// worst case for auto mode: it must detect incompressibility from the
// sample and fall back to raw frames without hurting throughput.
func incompressibleShuffle(t *testing.T, name string, mode tuple.CompressMode) (time.Duration, *hyracks.ConnStats) {
	t.Helper()
	const senders, receivers, perSender = 4, 4, 3000
	// One fixed pseudorandom blob; each tuple takes a distinct window.
	blob := make([]byte, 1<<16)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range blob {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		blob[i] = byte(state)
	}
	cluster := testCluster(t, senders)
	tr, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", ForceWire: true, Compress: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	local := nodeSet(cluster, 0, senders)
	peers := make(map[hyracks.NodeID]string)
	for id := range local {
		peers[id] = tr.Addr()
	}
	tr.SetPeers(peers, local)

	spec := &hyracks.JobSpec{Name: name}
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "src",
		Partitions: senders,
		NewSource: func(tc *hyracks.TaskContext) (hyracks.SourceRuntime, error) {
			part := tc.Partition
			return &hyracks.FuncSource{F: func(ctx context.Context, b *hyracks.BaseSource) error {
				for i := 0; i < perSender; i++ {
					vid := uint64(part*perSender+i) * 0x9E3779B97F4A7C15 // unsorted: no delta
					off := (part*perSender + i*97) % (len(blob) - 256)
					if err := b.EmitFields(0, tuple.EncodeUint64(vid), blob[off:off+256]); err != nil {
						return err
					}
				}
				return nil
			}}, nil
		},
	})
	col := &shuffleCollector{}
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "sink",
		Partitions: receivers,
		NewRuntime: func(tc *hyracks.TaskContext) (hyracks.PushRuntime, error) {
			return &hyracks.FuncRuntime{OnRef: func(_ *hyracks.BaseRuntime, r tuple.TupleRef) error {
				col.mu.Lock()
				col.sum += tuple.DecodeUint64(r.Field(0))
				col.count++
				col.mu.Unlock()
				return nil
			}}, nil
		},
	})
	spec.Connect(&hyracks.ConnectorDesc{
		From: "src", To: "sink",
		Type:         hyracks.MToNPartitioning,
		Partitioner:  hyracks.HashPartitioner(0),
		BufferFrames: 2,
	})

	start := time.Now()
	res, err := hyracks.RunJobWith(context.Background(), cluster, spec,
		hyracks.ExecOptions{Transport: tr, LocalNodes: local})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if col.count != senders*perSender {
		t.Fatalf("received %d tuples, want %d", col.count, senders*perSender)
	}
	return elapsed, res.ConnStats["src->sink"]
}

// TestAutoNoRegressionOnIncompressiblePayload is the CI bench smoke for
// the auto fallback: on payload that cannot compress, auto must (a) ship
// essentially the same wire bytes as off — raw frames plus the one-byte
// encoding tag — and (b) not regress shuffle MB/s by more than 5%.
// Throughput is timing-dependent, so the rate check takes the best of
// three attempts before failing.
func TestAutoNoRegressionOnIncompressiblePayload(t *testing.T) {
	const attempts = 3
	var lastOff, lastAuto float64
	for i := 0; i < attempts; i++ {
		offWall, offStats := incompressibleShuffle(t, "incomp-off", tuple.CompressOff)
		autoWall, autoStats := incompressibleShuffle(t, "incomp-auto", tuple.CompressAuto)
		if autoStats.Bytes() != offStats.Bytes() {
			t.Fatalf("payload bytes diverge: auto %d, off %d", autoStats.Bytes(), offStats.Bytes())
		}
		// Deterministic bound: auto's only overhead on raw frames is the
		// per-DATA encoding tag.
		if w, o := autoStats.WireBytes(), offStats.WireBytes(); w > o+autoStats.Frames() {
			t.Fatalf("auto shipped %d wire bytes on incompressible payload, off shipped %d (+%d frames allowed)",
				w, o, autoStats.Frames())
		}
		if raceEnabled {
			// The race detector slows the sampling probe far more than
			// the raw copy path; only the byte bound is meaningful here.
			return
		}
		lastOff = float64(offStats.Bytes()) / offWall.Seconds()
		lastAuto = float64(autoStats.Bytes()) / autoWall.Seconds()
		if lastAuto >= 0.95*lastOff {
			return
		}
	}
	t.Fatalf("auto shuffle rate %.1f MB/s is >5%% below off's %.1f MB/s on incompressible payload",
		lastAuto/(1<<20), lastOff/(1<<20))
}

// TestUnproposedStreamGetsLegacyCredit checks the downgrade wire
// format: a sender that does not propose compression must receive the
// legacy 4-byte credit even from a compressing receiver, so
// pre-compression peers keep working unchanged.
func TestUnproposedStreamGetsLegacyCredit(t *testing.T) {
	recvT, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", Compress: tuple.CompressFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer recvT.Close()
	sender, receiver := hyracks.NodeID("nc1"), hyracks.NodeID("nc2")
	recvT.SetPeers(map[hyracks.NodeID]string{sender: "", receiver: recvT.Addr()},
		map[hyracks.NodeID]bool{receiver: true})
	rc, err := recvT.OpenConn(hyracks.ConnPlacement{
		ID:            hyracks.ConnID{Job: "legacy-job", Conn: "a->b"},
		Senders:       1,
		Receivers:     1,
		BufferFrames:  3,
		SenderNodes:   []hyracks.NodeID{sender},
		ReceiverNodes: []hyracks.NodeID{receiver},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	conn := dialData(t, recvT.Addr())
	open, _ := json.Marshal(openInfo{Job: "legacy-job", Conn: "a->b", Sender: 0, Receiver: 0, Buffer: 3})
	var hdr [9]byte
	hdr[0] = msgOpen
	binary.LittleEndian.PutUint32(hdr[1:], 1)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(open)))
	if _, err := conn.Write(append(hdr[:], open...)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var chdr [9]byte
	if _, err := io.ReadFull(conn, chdr[:]); err != nil {
		t.Fatalf("no initial credit: %v", err)
	}
	if chdr[0] != msgCredit {
		t.Fatalf("expected CREDIT, got type %d", chdr[0])
	}
	if clen := binary.LittleEndian.Uint32(chdr[5:]); clen != 4 {
		t.Fatalf("unproposed stream got a %d-byte credit, want legacy 4", clen)
	}
}

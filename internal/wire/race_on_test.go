//go:build race

package wire

// raceEnabled gates timing-sensitive assertions: the race detector
// slows compression sampling far more than memcpy, so throughput
// comparisons only hold in non-race builds.
const raceEnabled = true

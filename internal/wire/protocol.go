// Package wire is the network transport of the engine: the real
// counterpart of the in-process channel transport, carrying packed frame
// images between node controllers running in different OS processes.
//
// Data plane. Each process listens on one TCP address; a process with
// frames to ship dials one connection per destination process and
// multiplexes every (connector, sender partition → receiver partition)
// stream of every running job over it. Messages are length-prefixed:
//
//	+------+-----------+-----------+====================+
//	| type | stream id | length    | payload            |
//	| u8   | u32 LE    | u32 LE    | length bytes       |
//	+------+-----------+-----------+====================+
//
//	OPEN   sender → receiver  JSON stream identity (job, connector,
//	                          sender, receiver, buffer frames, optional
//	                          compression proposal)
//	DATA   sender → receiver  one frame image. On a plain stream the
//	                          payload is tuple.WriteFrame bytes, written
//	                          straight from the pooled frame — no
//	                          re-serialization. On a stream that
//	                          negotiated compression it is
//	                          [enc u8][encoded body] (see tuple's frame
//	                          codec: raw / flate / vid-delta per frame)
//	EOS    sender → receiver  end of stream
//	ERR    sender → receiver  producer failure, error text as payload
//	CREDIT receiver → sender  u32 LE grant of DATA frames; the first
//	                          CREDIT of a stream whose OPEN proposed
//	                          compression carries a fifth byte: 1 =
//	                          encoded DATA accepted, 0 = raw only
//	RESET  receiver → sender  receiver gone; sender aborts the stream
//
// Flow control is credit-based: a sender may have at most as many
// unacknowledged DATA frames in flight as the receiver has granted. The
// receiver grants the connector's buffer window when it claims a stream
// and one more credit each time it dequeues a frame, so the wire
// replaces channel blocking with an equivalent bounded window and the
// demultiplexer never blocks on a slow consumer. EOS, ERR and RESET are
// carried in-band and consume no credit.
//
// Compression is negotiated per stream so mixed clusters interoperate:
// a sender running with -compress proposes its mode in OPEN ("flate"
// or "auto"); the receiver answers in the initial CREDIT's accept
// byte. A peer that does not compress (or predates the field — it
// ignores the unknown JSON key and sends a legacy 4-byte CREDIT)
// silently downgrades the stream to raw frame images. DATA frames are
// not flushed individually: the sender's write buffer coalesces small
// frames and drains on control messages, buffer pressure, or before
// the sender blocks on credits.
//
// Control plane. The cluster controller and its workers exchange
// newline-delimited JSON envelopes over a separate connection (see
// control.go): one envelope is {id, method?, error?, data?}, where a
// non-empty method marks a request and anything else answers the
// request with the same id. The worker dials, sends a single "register"
// request, and once the controller answers it with the assembled
// topology the connection flips direction — the controller calls, the
// worker answers:
//
//	+-----------------------+---------------------------------------------+
//	| method                | payload / meaning                           |
//	+-----------------------+---------------------------------------------+
//	| register              | worker → cc   data addr + node count; the   |
//	|                       |               response is the topology (or  |
//	|                       |               parks the worker as a standby |
//	|                       |               until a failure adopts it)    |
//	| ping                  | cc → worker   reachability probe            |
//	| heartbeat             | cc → worker   liveness probe; sent every    |
//	|                       |               HeartbeatInterval. Missing    |
//	|                       |               HeartbeatMisses in a row      |
//	|                       |               declares the worker DEAD even |
//	|                       |               if its TCP connection looks   |
//	|                       |               healthy (hung process)        |
//	| dfs.put               | cc → worker   replicate an input file       |
//	| job.begin / job.end   | cc → worker   open / tear down a job        |
//	|                       |               session (partition state);    |
//	|                       |               job.end with retain seals the |
//	|                       |               session's vertex B-trees into |
//	|                       |               a result version the query    |
//	|                       |               verbs serve, and the reply    |
//	|                       |               names the partitions retained |
//	| job.load              | cc → worker   run the loading phase         |
//	| job.superstep         | cc → worker   run one superstep job (ss,    |
//	|                       |               global state, join plan,      |
//	|                       |               recovery attempt)             |
//	| job.dump              | cc → worker   run the dump phase            |
//	| job.cancel, job.abort | cc → worker   cancel the in-flight phase    |
//	|                       |               ONLY — the session survives,  |
//	|                       |               so a restore can follow; the  |
//	|                       |               reply waits for task drain    |
//	| job.checkpoint        | cc → worker   snapshot owned partitions     |
//	|                       |               (vertex + msgs, frame images);|
//	|                       |               the reply is the worker's ack |
//	|                       |               in the manifest commit        |
//	| job.restore           | cc → worker   rewind the session to a       |
//	|                       |               committed checkpoint from the |
//	|                       |               shipped partition images      |
//	| cluster.reconfigure   | cc → worker   install new topology: owned-  |
//	|                       |               node set + peer routing table |
//	|                       |               (after a failure repair or an |
//	|                       |               elastic rebalance), plus jobs |
//	|                       |               whose parked streams to purge |
//	| partition.send        | cc → worker   snapshot named partitions for |
//	|                       |               migration (checkpoint-format  |
//	|                       |               frame images); the partitions |
//	|                       |               stay live until the drop      |
//	| partition.recv        | cc → worker   install migrated partitions   |
//	|                       |               (rebuild Vertex/Msg/Vid from  |
//	|                       |               the images, adopt GS + epoch) |
//	| partition.drop        | cc → worker   reclaim partitions that       |
//	|                       |               migrated away (sent only once |
//	|                       |               the new owner acked)          |
//	| worker.release        | cc → worker   end of a drain: the worker    |
//	|                       |               hosts nothing and may exit    |
//	| query.point           | cc → worker   batched point lookups against |
//	|                       |               an exact sealed result        |
//	|                       |               version's retained B-trees    |
//	| query.topk            | cc → worker   the worker's local top-k by   |
//	|                       |               vertex value; the controller  |
//	|                       |               merges per-worker lists       |
//	| delta.ingest          | cc → worker   open a delta session: clone   |
//	|                       |               the named sealed version's    |
//	|                       |               partitions, apply a routed    |
//	|                       |               mutation batch through the    |
//	|                       |               job's Resolver, accumulate    |
//	|                       |               the dirty vertex set          |
//	| delta.run             | cc → worker   arm the delta session: mark   |
//	|                       |               the dirty frontier live and   |
//	|                       |               seed the global state so      |
//	|                       |               job.superstep rounds refresh  |
//	|                       |               incrementally; job.end seals  |
//	|                       |               the clone as the new version  |
//	| worker.drain          | worker → cc   NOTIFICATION (no reply): a    |
//	|                       |               departing worker asks to have |
//	|                       |               its partitions migrated out   |
//	+-----------------------+---------------------------------------------+
//
// Failure notification needs no message of its own: a crashed worker's
// connection breaks (failing its pending calls at the controller), and
// a hung worker is converted into a broken connection by the heartbeat
// monitor closing it. Data-plane streams to a dead process fail their
// senders the same way, and RESET unblocks anything still parked.
// worker.drain is the single worker-initiated message; the controller's
// Caller surfaces it through OnNotify rather than response matching.
// The verbs and their payload schemas live in internal/core/dist.go;
// this package carries them opaquely.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pregelix/internal/tuple"
)

// Data-plane message types.
const (
	msgOpen byte = iota + 1
	msgData
	msgEOS
	msgErr
	msgCredit
	msgReset
)

// dataMagic is the preamble a dialer writes on a fresh data connection.
const dataMagic = "PGXW1\n"

// ctrlMagic is the preamble of control-plane connections.
const ctrlMagic = "PGXC1\n"

// maxCtrlPayload bounds non-frame payloads (OPEN JSON, error text) so a
// corrupt header cannot drive a huge allocation.
const maxCtrlPayload = 1 << 20

// openInfo identifies one stream: the payload of an OPEN message.
//
//	field    | JSON     | meaning
//	---------+----------+---------------------------------------------
//	Job      | job      | job name the stream belongs to
//	Conn     | conn     | connector id within the job ("src->sink")
//	Sender   | sender   | sending partition index
//	Receiver | receiver | receiving partition index
//	Buffer   | buffer   | frame window, granted as the initial credit
//	Comp     | comp     | compression proposal: "flate", "auto", or
//	         |          | omitted (raw frames only)
//
// Comp is omitted from the wire entirely for raw senders, so peers
// that predate the field parse OPEN unchanged; unknown future values
// are treated as no proposal by the receiver.
type openInfo struct {
	Job      string `json:"job"`
	Conn     string `json:"conn"`
	Sender   int    `json:"sender"`
	Receiver int    `json:"receiver"`
	// Buffer is the connector's frame window; the receiver grants it as
	// the stream's initial credit.
	Buffer int `json:"buffer"`
	// Comp is the sender's compression proposal ("flate" or "auto";
	// empty = raw frames only). The receiver answers with the accept
	// byte of the stream's initial CREDIT.
	Comp string `json:"comp,omitempty"`
}

// msgHeader is the fixed 9-byte message prefix.
type msgHeader struct {
	typ    byte
	stream uint32
	length uint32
}

func writeHeader(w io.Writer, h msgHeader) error {
	var buf [9]byte
	buf[0] = h.typ
	binary.LittleEndian.PutUint32(buf[1:], h.stream)
	binary.LittleEndian.PutUint32(buf[5:], h.length)
	_, err := w.Write(buf[:])
	return err
}

func readHeader(r io.Reader) (msgHeader, error) {
	var buf [9]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return msgHeader{}, err
	}
	return msgHeader{
		typ:    buf[0],
		stream: binary.LittleEndian.Uint32(buf[1:]),
		length: binary.LittleEndian.Uint32(buf[5:]),
	}, nil
}

// writeMsg writes one non-frame message and flushes.
func writeMsg(w *bufio.Writer, typ byte, stream uint32, payload []byte) error {
	if err := writeHeader(w, msgHeader{typ: typ, stream: stream, length: uint32(len(payload))}); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writeFrameMsg writes one DATA message: the header followed by the
// frame image streamed straight out of the frame buffer. The bytes
// stay in the connection's write buffer — the sender flushes before
// blocking on credits and on every control message, so small frames
// coalesce into one syscall instead of paying a flush each. It returns
// the message's on-wire size.
func writeFrameMsg(w *bufio.Writer, stream uint32, f *tuple.Frame) (int, error) {
	n := f.FrameImageSize()
	if err := writeHeader(w, msgHeader{typ: msgData, stream: stream, length: uint32(n)}); err != nil {
		return 0, err
	}
	if err := tuple.WriteFrame(w, f); err != nil {
		return 0, err
	}
	return 9 + n, nil
}

// writeEncFrameMsg writes one DATA message on a stream that negotiated
// compression: [enc u8][encoded body], with raw fallback images still
// streamed zero-copy out of the frame buffer. It returns the message's
// on-wire size.
func writeEncFrameMsg(w *bufio.Writer, stream uint32, f *tuple.Frame, e *tuple.FrameEncoder) (int, error) {
	enc, payload, err := e.EncodeFrame(f)
	if err != nil {
		return 0, err
	}
	n := len(payload)
	if enc == tuple.EncRaw {
		n = f.FrameImageSize()
	}
	if err := writeHeader(w, msgHeader{typ: msgData, stream: stream, length: uint32(1 + n)}); err != nil {
		return 0, err
	}
	if err := w.WriteByte(enc); err != nil {
		return 0, err
	}
	if enc == tuple.EncRaw {
		if err := tuple.WriteFrame(w, f); err != nil {
			return 0, err
		}
	} else if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 9 + 1 + n, nil
}

// readFrame reads one DATA payload into a pooled frame, validating that
// the image consumed exactly the advertised length.
func readFrame(r *bufio.Reader, length uint32) (*tuple.Frame, error) {
	lr := &io.LimitedReader{R: r, N: int64(length)}
	f := tuple.GetFrame()
	if err := tuple.ReadFrameInto(lr, f); err != nil {
		tuple.PutFrame(f)
		return nil, err
	}
	if lr.N != 0 {
		tuple.PutFrame(f)
		return nil, fmt.Errorf("wire: frame image shorter than header length (%d bytes left)", lr.N)
	}
	return f, nil
}

// readEncFrame reads one encoded DATA payload ([enc u8][body]) into a
// pooled frame through the connection's decoder.
func readEncFrame(r *bufio.Reader, length uint32, d *tuple.FrameDecoder) (*tuple.Frame, error) {
	if length < 1 {
		return nil, fmt.Errorf("wire: empty encoded DATA message")
	}
	enc, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	f := tuple.GetFrame()
	if err := d.DecodeInto(enc, r, int(length-1), f); err != nil {
		tuple.PutFrame(f)
		return nil, err
	}
	return f, nil
}

// readPayload reads a bounded non-frame payload.
func readPayload(r *bufio.Reader, length uint32) ([]byte, error) {
	if length > maxCtrlPayload {
		return nil, fmt.Errorf("wire: implausible %d-byte control payload", length)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

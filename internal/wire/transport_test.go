package wire

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pregelix/internal/hyracks"
	"pregelix/internal/tuple"
)

func testCluster(t *testing.T, n int) *hyracks.Cluster {
	t.Helper()
	c, err := hyracks.NewCluster(t.TempDir(), n, hyracks.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func nodeSet(c *hyracks.Cluster, from, to int) map[hyracks.NodeID]bool {
	out := make(map[hyracks.NodeID]bool)
	for i, n := range c.Nodes() {
		if i >= from && i < to {
			out[n.ID] = true
		}
	}
	return out
}

// shuffleSpec builds a src -> sink m-to-n partitioning job whose sink
// checksums what it receives.
type shuffleCollector struct {
	mu     sync.Mutex
	sum    uint64
	count  int
	byPart map[int]int
}

func shuffleSpec(name string, senders, receivers, perSender int, merging bool, col *shuffleCollector) *hyracks.JobSpec {
	spec := &hyracks.JobSpec{Name: name}
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "src",
		Partitions: senders,
		NewSource: func(tc *hyracks.TaskContext) (hyracks.SourceRuntime, error) {
			part := tc.Partition
			return &hyracks.FuncSource{F: func(ctx context.Context, b *hyracks.BaseSource) error {
				for i := 0; i < perSender; i++ {
					var vid uint64
					if merging {
						vid = uint64(i*senders + part) // ascending per sender
					} else {
						vid = uint64(part*perSender + i)
					}
					if err := b.EmitFields(0, tuple.EncodeUint64(vid), []byte("payload")); err != nil {
						return err
					}
				}
				return nil
			}}, nil
		},
	})
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "sink",
		Partitions: receivers,
		NewRuntime: func(tc *hyracks.TaskContext) (hyracks.PushRuntime, error) {
			p := tc.Partition
			return &hyracks.FuncRuntime{OnRef: func(_ *hyracks.BaseRuntime, r tuple.TupleRef) error {
				vid := tuple.DecodeUint64(r.Field(0))
				col.mu.Lock()
				col.sum += vid
				col.count++
				if col.byPart != nil {
					col.byPart[p]++
				}
				col.mu.Unlock()
				return nil
			}}, nil
		},
	})
	cd := &hyracks.ConnectorDesc{
		From: "src", To: "sink",
		Type:         hyracks.MToNPartitioning,
		Partitioner:  hyracks.HashPartitioner(0),
		BufferFrames: 2, // small window to exercise credit backpressure
	}
	if merging {
		cd.Type = hyracks.MToNPartitioningMerging
		cd.Comparator = tuple.Field0RefCompare
	}
	spec.Connect(cd)
	return spec
}

// TestForceWireShuffle pushes a partitioned shuffle through loopback TCP
// in a single process and checks it matches the channel transport
// tuple-for-tuple (counts, checksum, ConnStats).
func TestForceWireShuffle(t *testing.T) {
	const senders, receivers, perSender = 4, 4, 5000
	cluster := testCluster(t, senders)

	chanCol := &shuffleCollector{}
	chanRes, err := hyracks.RunJob(context.Background(), cluster,
		shuffleSpec("shuffle-chan", senders, receivers, perSender, false, chanCol))
	if err != nil {
		t.Fatal(err)
	}

	tr, err := NewTCPTransport(Config{
		ListenAddr: "127.0.0.1:0",
		ForceWire:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	local := nodeSet(cluster, 0, senders)
	peers := make(map[hyracks.NodeID]string)
	for id := range local {
		peers[id] = tr.Addr()
	}
	tr.SetPeers(peers, local)

	wireCol := &shuffleCollector{}
	wireRes, err := hyracks.RunJobWith(context.Background(), cluster,
		shuffleSpec("shuffle-wire", senders, receivers, perSender, false, wireCol),
		hyracks.ExecOptions{Transport: tr, LocalNodes: local})
	if err != nil {
		t.Fatal(err)
	}

	if wireCol.count != chanCol.count || wireCol.sum != chanCol.sum {
		t.Fatalf("wire saw (%d tuples, sum %d), chan saw (%d, %d)",
			wireCol.count, wireCol.sum, chanCol.count, chanCol.sum)
	}
	cs, ws := chanRes.ConnStats["src->sink"], wireRes.ConnStats["src->sink"]
	if cs.Tuples() != ws.Tuples() || cs.Bytes() != ws.Bytes() {
		t.Fatalf("conn stats diverge: chan (%d tuples, %d bytes), wire (%d, %d)",
			cs.Tuples(), cs.Bytes(), ws.Tuples(), ws.Bytes())
	}
}

// twoProc builds two transports that split the cluster's nodes in half,
// simulating two worker processes on loopback.
func twoProc(t *testing.T, clusterA, clusterB *hyracks.Cluster) (a, b *TCPTransport, localA, localB map[hyracks.NodeID]bool) {
	t.Helper()
	n := len(clusterA.Nodes())
	localA = nodeSet(clusterA, 0, n/2)
	localB = nodeSet(clusterB, n/2, n)
	var err error
	a, err = NewTCPTransport(Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewTCPTransport(Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	peers := make(map[hyracks.NodeID]string)
	for id := range localA {
		peers[id] = a.Addr()
	}
	for id := range localB {
		peers[id] = b.Addr()
	}
	a.SetPeers(peers, localA)
	b.SetPeers(peers, localB)
	return a, b, localA, localB
}

// TestTwoProcessShuffle runs the same job spec in two executor instances
// that each own half the nodes, with the shuffle crossing real sockets.
func TestTwoProcessShuffle(t *testing.T) {
	for _, merging := range []bool{false, true} {
		name := "plain"
		if merging {
			name = "merging"
		}
		t.Run(name, func(t *testing.T) {
			const senders, receivers, perSender = 4, 4, 4000
			dirA, dirB := t.TempDir(), t.TempDir()
			clusterA, err := hyracks.NewCluster(dirA, senders, hyracks.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			clusterB, err := hyracks.NewCluster(dirB, senders, hyracks.NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			trA, trB, localA, localB := twoProc(t, clusterA, clusterB)

			col := &shuffleCollector{byPart: make(map[int]int)}
			specName := "dist-" + name
			var wg sync.WaitGroup
			errs := make([]error, 2)
			run := func(i int, cluster *hyracks.Cluster, tr *TCPTransport, local map[hyracks.NodeID]bool) {
				defer wg.Done()
				_, errs[i] = hyracks.RunJobWith(context.Background(), cluster,
					shuffleSpec(specName, senders, receivers, perSender, merging, col),
					hyracks.ExecOptions{Transport: tr, LocalNodes: local})
			}
			wg.Add(2)
			go run(0, clusterA, trA, localA)
			go run(1, clusterB, trB, localB)
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("process %d: %v", i, err)
				}
			}

			n := senders * perSender
			if col.count != n {
				t.Fatalf("received %d tuples, want %d", col.count, n)
			}
			if want := uint64(n) * uint64(n-1) / 2; col.sum != want {
				t.Fatalf("checksum %d, want %d", col.sum, want)
			}
			// Every receiver partition, wherever it lives, saw traffic.
			if len(col.byPart) != receivers {
				t.Fatalf("only %d of %d receiver partitions saw tuples", len(col.byPart), receivers)
			}
		})
	}
}

// TestTwoProcessErrorPropagation fails a source in process A and expects
// the error to reach the receivers hosted by process B in-band.
func TestTwoProcessErrorPropagation(t *testing.T) {
	const nodes = 4
	dirA, dirB := t.TempDir(), t.TempDir()
	clusterA, err := hyracks.NewCluster(dirA, nodes, hyracks.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clusterB, err := hyracks.NewCluster(dirB, nodes, hyracks.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	trA, trB, localA, localB := twoProc(t, clusterA, clusterB)

	boom := errors.New("boom: injected source failure")
	spec := func() *hyracks.JobSpec {
		s := &hyracks.JobSpec{Name: "dist-fail"}
		s.AddOp(&hyracks.OperatorDesc{
			ID:         "src",
			Partitions: nodes,
			NewSource: func(tc *hyracks.TaskContext) (hyracks.SourceRuntime, error) {
				part := tc.Partition
				return &hyracks.FuncSource{F: func(ctx context.Context, b *hyracks.BaseSource) error {
					for i := 0; ; i++ {
						if part == 0 && i == 500 {
							return boom
						}
						if err := ctx.Err(); err != nil {
							return err
						}
						if err := b.EmitFields(0, tuple.EncodeUint64(uint64(i)), nil); err != nil {
							return err
						}
					}
				}}, nil
			},
		})
		s.AddOp(&hyracks.OperatorDesc{
			ID:         "sink",
			Partitions: nodes,
			NewRuntime: func(tc *hyracks.TaskContext) (hyracks.PushRuntime, error) {
				return &hyracks.FuncRuntime{}, nil
			},
		})
		s.Connect(&hyracks.ConnectorDesc{
			From: "src", To: "sink",
			Type: hyracks.MToNPartitioning, Partitioner: hyracks.HashPartitioner(0),
			BufferFrames: 2,
		})
		return s
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = hyracks.RunJobWith(context.Background(), clusterA, spec(),
			hyracks.ExecOptions{Transport: trA, LocalNodes: localA})
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = hyracks.RunJobWith(context.Background(), clusterB, spec(),
			hyracks.ExecOptions{Transport: trB, LocalNodes: localB})
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("two-process failure run wedged:\n%s", buf[:runtime.Stack(buf, true)])
	}
	// The failing process reports the error; node 0 lives in process A.
	if errs[0] == nil || errs[0].Error() != boom.Error() {
		t.Fatalf("process A error = %v, want %v", errs[0], boom)
	}
	// Process B's receivers must observe the failure (in-band ERR or its
	// own sender streams resetting) rather than hanging; either way its
	// run ends with a non-nil error.
	if errs[1] == nil {
		t.Fatal("process B returned nil error after remote failure")
	}
}

// TestStreamResetUnblocksSender verifies that closing the receiving side
// of a connector resets blocked remote senders instead of leaving them
// waiting for credits.
func TestStreamResetUnblocksSender(t *testing.T) {
	recvT, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvT.Close()
	sendT, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer sendT.Close()

	nodes := []hyracks.NodeID{"nc1", "nc2"}
	peers := map[hyracks.NodeID]string{nodes[0]: sendT.Addr(), nodes[1]: recvT.Addr()}
	sendT.SetPeers(peers, map[hyracks.NodeID]bool{nodes[0]: true})
	recvT.SetPeers(peers, map[hyracks.NodeID]bool{nodes[1]: true})

	placement := hyracks.ConnPlacement{
		ID:            hyracks.ConnID{Job: "reset-job", Conn: "a->b"},
		Senders:       1,
		Receivers:     1,
		BufferFrames:  2,
		SenderNodes:   []hyracks.NodeID{nodes[0]},
		ReceiverNodes: []hyracks.NodeID{nodes[1]},
	}
	sendConn, err := sendT.OpenConn(placement)
	if err != nil {
		t.Fatal(err)
	}
	defer sendConn.Close()
	recvConn, err := recvT.OpenConn(placement)
	if err != nil {
		t.Fatal(err)
	}

	port := sendConn.SendPort(0, 0)
	frame := func() *tuple.Frame {
		f := tuple.GetFrame()
		a := tuple.NewFrameAppender(f)
		a.Append([]byte("x"))
		return f
	}
	// The receiver never drains, so the sender must run out of credits
	// after the stream's bounded window (inbox + shared queue) fills.
	const maxWindow = 16 // well above 2*BufferFrames
	sent := make(chan int, 1)
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if err := port.Send(context.Background(), hyracks.Packet{Frame: frame()}); err != nil {
				sent <- i
				sendErr <- err
				return
			}
		}
	}()
	select {
	case <-sendErr:
		t.Fatalf("sender failed before the receiver closed (sent %d)", <-sent)
	case <-time.After(300 * time.Millisecond):
		// blocked on credits, as intended
	}
	recvConn.Close() // receiver goes away: RESET expected
	select {
	case err := <-sendErr:
		if !errors.Is(err, ErrStreamReset) {
			t.Fatalf("blocked send failed with %v, want ErrStreamReset", err)
		}
		if n := <-sent; n > maxWindow {
			t.Fatalf("sender shipped %d frames into a stalled stream; backpressure window leaks", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked sender not unblocked by receiver close")
	}
}

// TestManyStreamsOneConn checks stream multiplexing: many connectors of
// many jobs between the same process pair share one TCP connection.
func TestManyStreamsOneConn(t *testing.T) {
	const jobs = 8
	dirA, dirB := t.TempDir(), t.TempDir()
	clusterA, err := hyracks.NewCluster(dirA, 2, hyracks.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clusterB, err := hyracks.NewCluster(dirB, 2, hyracks.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	trA, trB, localA, localB := twoProc(t, clusterA, clusterB)

	var wg sync.WaitGroup
	errs := make([]error, 2*jobs)
	for j := 0; j < jobs; j++ {
		col := &shuffleCollector{}
		spec := fmt.Sprintf("multi-%d", j)
		wg.Add(2)
		go func(j int) {
			defer wg.Done()
			_, errs[2*j] = hyracks.RunJobWith(context.Background(), clusterA,
				shuffleSpec(spec, 2, 2, 1000, false, col),
				hyracks.ExecOptions{Transport: trA, LocalNodes: localA})
		}(j)
		go func(j int) {
			defer wg.Done()
			_, errs[2*j+1] = hyracks.RunJobWith(context.Background(), clusterB,
				shuffleSpec(spec, 2, 2, 1000, false, col),
				hyracks.ExecOptions{Transport: trB, LocalNodes: localB})
		}(j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"pregelix/internal/hyracks"
	"pregelix/internal/tuple"
)

// ErrStreamReset is the failure a sender observes when the receiving
// process tears a stream down (job finished or failed remotely).
var ErrStreamReset = errors.New("wire: stream reset by receiver")

// errTransportClosed fails in-flight streams when the transport shuts down.
var errTransportClosed = errors.New("wire: transport closed")

// Config describes one process's slice of the cluster to the transport.
type Config struct {
	// ListenAddr is the data-plane listen address ("" = rely on the
	// listener created by Listen).
	ListenAddr string
	// Local is the set of nodes hosted by this process.
	Local map[hyracks.NodeID]bool
	// Peers maps every cluster node to the data-plane address of the
	// process hosting it. Local nodes may be omitted.
	Peers map[hyracks.NodeID]string
	// ForceWire routes even local→local streams through the loopback
	// socket. Used by parity tests and benchmarks to exercise the full
	// wire path in one process.
	ForceWire bool
	// Compress is the process's frame compression policy: proposed in
	// every outgoing OPEN and used to answer incoming proposals. Streams
	// compress only when both ends opt in, so mixed clusters downgrade
	// per stream to raw images. The zero value is CompressOff.
	Compress tuple.CompressMode
}

// TCPTransport implements hyracks.Transport over TCP: per-(connector,
// sender→receiver partition) streams multiplexed over one connection per
// destination process, credit-based backpressure, and in-band EOS/ERR.
// Streams between two tasks of the same process bypass the socket and
// use bounded channels (unless Config.ForceWire).
type TCPTransport struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	dialed   map[string]*sendConn      // by destination address
	accepted map[net.Conn]bool         // inbound data connections
	regs     map[regKey]*recvReg       // registered connectors
	pending  map[streamKey]*recvStream // streams opened before registration
	closed   bool
	wg       sync.WaitGroup
}

type regKey struct{ job, conn string }

type streamKey struct {
	job, conn        string
	sender, receiver int
}

// NewTCPTransport starts a transport listening on cfg.ListenAddr (the
// address may use port 0; Addr reports the bound address).
func NewTCPTransport(cfg Config) (*TCPTransport, error) {
	t := &TCPTransport{
		cfg:      cfg,
		dialed:   make(map[string]*sendConn),
		accepted: make(map[net.Conn]bool),
		regs:     make(map[regKey]*recvReg),
		pending:  make(map[streamKey]*recvStream),
	}
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, err
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// Addr returns the bound data-plane address ("" without a listener).
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetPeers installs the node→address routing table (handshake result).
func (t *TCPTransport) SetPeers(peers map[hyracks.NodeID]string, local map[hyracks.NodeID]bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Peers = peers
	t.cfg.Local = local
}

// Close shuts the transport down: the listener stops, every connection
// closes, and blocked senders fail.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*sendConn, 0, len(t.dialed))
	for _, c := range t.dialed {
		conns = append(conns, c)
	}
	inbound := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		inbound = append(inbound, c)
	}
	regs := make([]*recvReg, 0, len(t.regs))
	for _, r := range t.regs {
		regs = append(regs, r)
	}
	t.mu.Unlock()

	for _, r := range regs {
		r.close(false)
	}
	for _, c := range conns {
		c.fail(errTransportClosed)
	}
	for _, c := range inbound {
		c.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
	return nil
}

// remote reports whether sends to the given node leave this process.
func (t *TCPTransport) remote(id hyracks.NodeID) bool {
	return t.cfg.ForceWire || !t.cfg.Local[id]
}

// PurgeJob drops parked streams belonging to the named job: streams
// opened by remote senders that this process never claimed (e.g. the
// job failed before the local executor registered the connector). Their
// senders get a RESET so they unblock instead of waiting for credits
// forever. Workers call it when a job ends. Phase executions are named
// "<job>-<phase>", so the match is the exact name or that shape — a
// bare-prefix match would let "pr@j1" purge "pr@j10"'s streams.
func (t *TCPTransport) PurgeJob(job string) {
	t.mu.Lock()
	var stale []*recvStream
	for k, st := range t.pending {
		if k.job == job || strings.HasPrefix(k.job, job+"-") {
			delete(t.pending, k)
			stale = append(stale, st)
		}
	}
	t.mu.Unlock()
	for _, st := range stale {
		st.shutdown(true)
	}
}

// ---------------------------------------------------------------------------
// hyracks.Transport implementation.
// ---------------------------------------------------------------------------

// OpenConn allocates the connector's local receive queues, registers
// them with the demultiplexer so peer processes can reach them, and
// claims any streams that were opened before this call.
func (t *TCPTransport) OpenConn(p hyracks.ConnPlacement) (hyracks.ConnTransport, error) {
	reg := &recvReg{t: t, p: p, done: make(chan struct{})}
	key := regKey{p.ID.Job, p.ID.Conn}

	if p.Merging {
		reg.merge = make(map[[2]int]chan hyracks.Packet)
	} else {
		reg.plain = make(map[int]chan hyracks.Packet)
	}
	reg.streams = make(map[[2]int]*recvStream)
	for r := 0; r < p.Receivers; r++ {
		if !t.cfg.Local[p.ReceiverNodes[r]] {
			continue // receiver hosted elsewhere; its process registers it
		}
		if !p.Merging {
			reg.plain[r] = make(chan hyracks.Packet, p.BufferFrames)
		}
		for s := 0; s < p.Senders; s++ {
			if p.Merging {
				reg.merge[[2]int{s, r}] = make(chan hyracks.Packet, p.BufferFrames)
			}
			if t.remote(p.SenderNodes[s]) {
				st := newRecvStream(reg, streamKey{p.ID.Job, p.ID.Conn, s, r}, p.BufferFrames)
				reg.streams[[2]int{s, r}] = st
			}
		}
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errTransportClosed
	}
	if _, dup := t.regs[key]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("wire: connector %s/%s registered twice", key.job, key.conn)
	}
	t.regs[key] = reg
	// Claim streams whose OPEN raced ahead of this registration: the
	// parked shell (already bound to its connection, possibly holding an
	// early EOS/ERR in its inbox) replaces the placeholder.
	var claims []*recvStream
	for k, st := range reg.streams {
		if pend, ok := t.pending[st.key]; ok {
			delete(t.pending, st.key)
			pend.setReg(reg)
			reg.streams[k] = pend
			claims = append(claims, pend)
		}
	}
	t.mu.Unlock()

	for _, pend := range claims {
		pend.grantInitial()
	}
	// Start plain forwarders for every expected remote stream.
	if !p.Merging {
		for _, st := range reg.streams {
			reg.fwdWG.Add(1)
			go st.forwardPlain()
		}
	}
	return &wireConn{t: t, reg: reg}, nil
}

// wireConn is one connector's transport state.
type wireConn struct {
	t   *TCPTransport
	reg *recvReg
}

func (c *wireConn) SendPort(s, r int) hyracks.SendPort {
	p := c.reg.p
	if !c.t.remote(p.ReceiverNodes[r]) {
		if p.Merging {
			return hyracks.ChanPort{Ch: c.reg.merge[[2]int{s, r}]}
		}
		return hyracks.ChanPort{Ch: c.reg.plain[r]}
	}
	info := openInfo{Job: p.ID.Job, Conn: p.ID.Conn, Sender: s, Receiver: r, Buffer: p.BufferFrames}
	if c.t.cfg.Compress != tuple.CompressOff {
		info.Comp = c.t.cfg.Compress.String()
	}
	return &wireSendPort{
		t:     c.t,
		addr:  c.t.cfg.Peers[p.ReceiverNodes[r]],
		info:  info,
		stats: p.Stats,
	}
}

func (c *wireConn) RecvPlain(r int) hyracks.RecvPort {
	return hyracks.ChanPort{Ch: c.reg.plain[r]}
}

func (c *wireConn) RecvMerge(s, r int) hyracks.RecvPort {
	if st := c.reg.streams[[2]int{s, r}]; st != nil {
		return &streamRecvPort{st: st}
	}
	return hyracks.ChanPort{Ch: c.reg.merge[[2]int{s, r}]}
}

func (c *wireConn) Close() {
	c.t.mu.Lock()
	delete(c.t.regs, regKey{c.reg.p.ID.Job, c.reg.p.ID.Conn})
	c.t.mu.Unlock()
	c.reg.close(true)
}

// ---------------------------------------------------------------------------
// Receiver side.
// ---------------------------------------------------------------------------

// recvReg is the receiving state of one registered connector.
type recvReg struct {
	t *TCPTransport
	p hyracks.ConnPlacement

	// plain: shared queue per local receiver partition. merge: one queue
	// per (sender, receiver) with a local sender.
	plain map[int]chan hyracks.Packet
	merge map[[2]int]chan hyracks.Packet
	// streams holds the pre-allocated receive state of every expected
	// remote stream, keyed by (sender, receiver).
	streams map[[2]int]*recvStream

	done      chan struct{}
	closeOnce sync.Once
	// fwdWG tracks plain forwarders; close drains the shared queues only
	// after they have exited, so a drain never races an enqueue.
	fwdWG sync.WaitGroup
}

// close tears the registration down: forwarders stop, any frame still
// queued returns to the pool, and remote senders of unfinished streams
// get a RESET so they fail fast instead of blocking on credits. The
// executor calls it only after every local task has exited, so once the
// streams are shut down and the forwarders have drained out, nothing
// can enqueue concurrently with the final sweep.
func (r *recvReg) close(reset bool) {
	r.closeOnce.Do(func() {
		close(r.done)
		for _, st := range r.streams {
			st.shutdown(reset)
		}
		r.fwdWG.Wait()
		for _, ch := range r.plain {
			hyracks.DrainPackets(ch)
		}
		for _, ch := range r.merge {
			hyracks.DrainPackets(ch)
		}
	})
}

// recvStream is the receiver-side state of one wire stream.
type recvStream struct {
	key    streamKey
	buffer int

	// inbox is fed by the connection demultiplexer. Its capacity covers
	// the whole credit window plus the creditless EOS/ERR, so the demux
	// never blocks on it.
	inbox chan hyracks.Packet
	done  chan struct{}

	mu       sync.Mutex
	reg      *recvReg    // set at creation, or at claim for parked shells
	conn     *acceptConn // bound on OPEN
	id       uint32
	granted  bool // initial window granted
	complete bool // EOS or ERR seen
	closed   bool
	// compProposed records that the OPEN offered encoded frames;
	// compAccepted that this process answered yes, so the stream's DATA
	// payloads are [enc u8][body]. Both are fixed at bind, before any
	// DATA for the stream can be demultiplexed.
	compProposed bool
	compAccepted bool
}

func newRecvStream(reg *recvReg, key streamKey, buffer int) *recvStream {
	return &recvStream{
		key:    key,
		reg:    reg,
		buffer: buffer,
		inbox:  make(chan hyracks.Packet, buffer+4),
		done:   make(chan struct{}),
	}
}

func (s *recvStream) setReg(r *recvReg) {
	s.mu.Lock()
	s.reg = r
	s.mu.Unlock()
}

// bind attaches the stream to the connection it was opened on and
// fixes the stream's compression answer.
func (s *recvStream) bind(c *acceptConn, id uint32, proposed, accepted bool) {
	s.mu.Lock()
	s.conn = c
	s.id = id
	s.compProposed = proposed
	s.compAccepted = accepted
	s.mu.Unlock()
	s.grantInitial()
}

// grantInitial opens the credit window once the stream is both bound to
// a connection and claimed by a registration — bind and claim race, so
// both call it and exactly one grant goes out.
func (s *recvStream) grantInitial() {
	s.mu.Lock()
	if s.granted || s.conn == nil || s.reg == nil {
		s.mu.Unlock()
		return
	}
	s.granted = true
	conn, id, n := s.conn, s.id, s.buffer
	proposed, accepted := s.compProposed, s.compAccepted
	s.mu.Unlock()
	conn.sendInitialCredit(id, uint32(n), proposed, accepted)
}

// credit returns one consumed frame's worth of window to the sender.
func (s *recvStream) credit() {
	s.mu.Lock()
	conn, id := s.conn, s.id
	closed := s.closed || s.complete
	s.mu.Unlock()
	if conn != nil && !closed {
		conn.sendCredit(id, 1)
	}
}

// deliver enqueues a demultiplexed packet. The enqueue happens under
// the stream mutex that shutdown also takes, so a packet either lands
// in the inbox before shutdown's drain or is dropped and its frame
// returned to the pool — never enqueued after the drain. The inbox
// never blocks by the credit invariant; the default arm is the
// defensive escape if a peer violates it.
func (s *recvStream) deliver(pkt hyracks.Packet) {
	s.mu.Lock()
	if pkt.EOS || pkt.Err != nil {
		s.complete = true
	}
	if s.closed {
		s.mu.Unlock()
		if pkt.Frame != nil {
			tuple.PutFrame(pkt.Frame)
		}
		return
	}
	select {
	case s.inbox <- pkt:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		if pkt.Frame != nil {
			tuple.PutFrame(pkt.Frame)
		}
	}
}

// forwardPlain moves packets from the stream inbox into the receiver
// partition's shared queue (plain connectors interleave every sender on
// one queue), granting a credit per data frame moved.
func (s *recvStream) forwardPlain() {
	defer s.reg.fwdWG.Done()
	out := s.reg.plain[s.key.receiver]
	for {
		select {
		case <-s.reg.done:
			return
		case pkt := <-s.inbox:
			select {
			case out <- pkt:
			case <-s.reg.done:
				if pkt.Frame != nil {
					tuple.PutFrame(pkt.Frame)
				}
				return
			}
			if pkt.Frame != nil {
				s.credit()
			}
			if pkt.EOS || pkt.Err != nil {
				return
			}
		}
	}
}

// shutdown stops the stream; unfinished remote senders get a RESET.
// Setting closed under the mutex fences deliver: no packet can land in
// the inbox after the drain below.
func (s *recvStream) shutdown(reset bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn, id := s.conn, s.id
	needReset := reset && conn != nil && !s.complete
	s.mu.Unlock()
	close(s.done)
	// Return any frames still parked in the inbox to the pool. A plain
	// forwarder may be consuming concurrently; both drains release to
	// the pool, so either taker is fine.
	for {
		select {
		case pkt := <-s.inbox:
			if pkt.Frame != nil {
				tuple.PutFrame(pkt.Frame)
			}
		default:
			if needReset {
				conn.sendReset(id)
			}
			return
		}
	}
}

// streamRecvPort reads one remote stream directly (merging receivers),
// granting a credit per consumed frame.
type streamRecvPort struct{ st *recvStream }

func (p *streamRecvPort) Recv(ctx context.Context) (hyracks.Packet, error) {
	select {
	case pkt := <-p.st.inbox:
		if pkt.Frame != nil {
			p.st.credit()
		}
		return pkt, nil
	case <-ctx.Done():
		return hyracks.Packet{}, ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Accepted (inbound) connections: the demultiplexer.
// ---------------------------------------------------------------------------

type acceptConn struct {
	t    *TCPTransport
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	// dec decodes encoded DATA payloads; only the connection's single
	// demultiplexer goroutine touches it.
	dec tuple.FrameDecoder

	mu      sync.Mutex
	streams map[uint32]*recvStream
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serveData(conn)
	}
}

// serveData demultiplexes one inbound data connection.
func (t *TCPTransport) serveData(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.accepted[conn] = true
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	magic := make([]byte, len(dataMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != dataMagic {
		return
	}
	ac := &acceptConn{t: t, conn: conn, bw: bufio.NewWriterSize(conn, 4<<10), streams: make(map[uint32]*recvStream)}
	for {
		h, err := readHeader(br)
		if err != nil {
			return
		}
		switch h.typ {
		case msgOpen:
			payload, err := readPayload(br, h.length)
			if err != nil {
				return
			}
			var info openInfo
			if err := json.Unmarshal(payload, &info); err != nil {
				return
			}
			t.bindIncoming(ac, h.stream, info)
		case msgData:
			st := ac.stream(h.stream)
			if st == nil {
				// Stream already finished or never bound here: skip the body.
				if _, err := io.CopyN(io.Discard, br, int64(h.length)); err != nil {
					return
				}
				continue
			}
			var f *tuple.Frame
			var err error
			if st.compAccepted {
				f, err = readEncFrame(br, h.length, &ac.dec)
			} else {
				f, err = readFrame(br, h.length)
			}
			if err != nil {
				return
			}
			st.deliver(hyracks.Packet{Frame: f})
		case msgEOS:
			if st := ac.take(h.stream); st != nil {
				st.deliver(hyracks.Packet{EOS: true})
			}
		case msgErr:
			payload, err := readPayload(br, h.length)
			if err != nil {
				return
			}
			if st := ac.take(h.stream); st != nil {
				st.deliver(hyracks.Packet{Err: errors.New(string(payload))})
			}
		default:
			return // protocol error: drop the connection
		}
	}
}

// bindIncoming routes a fresh OPEN to its registration, or parks the
// stream until the local OpenConn arrives.
func (t *TCPTransport) bindIncoming(ac *acceptConn, id uint32, info openInfo) {
	key := streamKey{info.Job, info.Conn, info.Sender, info.Receiver}
	buffer := info.Buffer
	if buffer <= 0 {
		buffer = 8
	}
	t.mu.Lock()
	accepted := info.Comp != "" && t.cfg.Compress != tuple.CompressOff
	reg := t.regs[regKey{info.Job, info.Conn}]
	var st *recvStream
	if reg != nil {
		st = reg.streams[[2]int{info.Sender, info.Receiver}]
	}
	if st == nil {
		// Opened before registration (or for an unknown endpoint): park a
		// shell; OpenConn claims it by key.
		st = newRecvStream(nil, key, buffer)
		t.pending[key] = st
	}
	t.mu.Unlock()
	ac.mu.Lock()
	ac.streams[id] = st
	ac.mu.Unlock()
	st.bind(ac, id, info.Comp != "", accepted)
}

func (ac *acceptConn) stream(id uint32) *recvStream {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.streams[id]
}

// take looks a stream up and forgets it (terminal EOS/ERR messages).
func (ac *acceptConn) take(id uint32) *recvStream {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st := ac.streams[id]
	delete(ac.streams, id)
	return st
}

func (ac *acceptConn) sendCredit(id uint32, n uint32) {
	var payload [4]byte
	payload[0] = byte(n)
	payload[1] = byte(n >> 8)
	payload[2] = byte(n >> 16)
	payload[3] = byte(n >> 24)
	ac.wmu.Lock()
	defer ac.wmu.Unlock()
	writeMsg(ac.bw, msgCredit, id, payload[:]) // conn errors surface on the sender side
}

// sendInitialCredit opens a stream's window. When the sender proposed
// compression in OPEN, the payload carries a fifth byte answering the
// proposal; legacy 4-byte credits mean "raw only" to the sender, which
// is also what a pre-compression receiver would send.
func (ac *acceptConn) sendInitialCredit(id, n uint32, proposed, accepted bool) {
	if !proposed {
		ac.sendCredit(id, n)
		return
	}
	var payload [5]byte
	payload[0] = byte(n)
	payload[1] = byte(n >> 8)
	payload[2] = byte(n >> 16)
	payload[3] = byte(n >> 24)
	if accepted {
		payload[4] = 1
	}
	ac.wmu.Lock()
	defer ac.wmu.Unlock()
	writeMsg(ac.bw, msgCredit, id, payload[:])
}

func (ac *acceptConn) sendReset(id uint32) {
	ac.wmu.Lock()
	defer ac.wmu.Unlock()
	writeMsg(ac.bw, msgReset, id, nil)
}

// ---------------------------------------------------------------------------
// Sender side.
// ---------------------------------------------------------------------------

// sendConn is one outbound connection to a destination process.
type sendConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	// enc encodes DATA frames for streams that negotiated compression;
	// guarded by wmu like the write buffer it feeds.
	enc *tuple.FrameEncoder

	mu      sync.Mutex
	next    uint32
	streams map[uint32]*sendStream
	err     error
}

// conn returns (dialing on first use) the connection to addr.
func (t *TCPTransport) connTo(addr string) (*sendConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errTransportClosed
	}
	if c := t.dialed[addr]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &sendConn{
		t:       t,
		addr:    addr,
		conn:    nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		enc:     tuple.NewFrameEncoder(t.cfg.Compress),
		streams: make(map[uint32]*sendStream),
	}
	if _, err := nc.Write([]byte(dataMagic)); err != nil {
		nc.Close()
		return nil, err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return nil, errTransportClosed
	}
	if race := t.dialed[addr]; race != nil {
		t.mu.Unlock()
		nc.Close()
		return race, nil
	}
	t.dialed[addr] = c
	t.mu.Unlock()

	t.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// flushDialed pushes the buffered DATA frames of every outbound
// connection to the kernel. A sender calls it before parking on
// credits: its own unflushed frames may be exactly what some receiver
// is waiting on — possibly on a different connection than the one the
// sender is blocked on — so the barrier covers them all. Everywhere
// else the write buffer drains on control messages (OPEN/EOS/ERR
// flush) or on buffer pressure.
func (t *TCPTransport) flushDialed() {
	t.mu.Lock()
	conns := make([]*sendConn, 0, len(t.dialed))
	for _, c := range t.dialed {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.flush()
	}
}

// flush drains the connection's write buffer.
func (c *sendConn) flush() {
	c.wmu.Lock()
	err := c.bw.Flush()
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
}

// readLoop processes the receiver→sender direction: credits and resets.
func (c *sendConn) readLoop() {
	defer c.t.wg.Done()
	br := bufio.NewReaderSize(c.conn, 4<<10)
	for {
		h, err := readHeader(br)
		if err != nil {
			c.fail(fmt.Errorf("wire: connection to %s lost: %w", c.addr, err))
			return
		}
		switch h.typ {
		case msgCredit:
			payload, err := readPayload(br, h.length)
			if err != nil || (len(payload) != 4 && len(payload) != 5) {
				c.fail(fmt.Errorf("wire: bad credit from %s", c.addr))
				return
			}
			n := uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
			if st := c.stream(h.stream); st != nil {
				// The initial credit's fifth byte latches the receiver's
				// compression answer before the window opens, so the first
				// DATA frame already uses the negotiated encoding.
				if len(payload) == 5 && payload[4] == 1 {
					st.setCompressed()
				}
				st.grant(int(n))
			}
		case msgReset:
			if st := c.stream(h.stream); st != nil {
				st.fail(ErrStreamReset)
			}
		default:
			c.fail(fmt.Errorf("wire: protocol error from %s (type %d)", c.addr, h.typ))
			return
		}
	}
}

func (c *sendConn) stream(id uint32) *sendStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams[id]
}

// fail poisons the connection and every stream on it.
func (c *sendConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	streams := make([]*sendStream, 0, len(c.streams))
	for _, st := range c.streams {
		streams = append(streams, st)
	}
	c.mu.Unlock()
	c.t.mu.Lock()
	if c.t.dialed[c.addr] == c {
		delete(c.t.dialed, c.addr)
	}
	c.t.mu.Unlock()
	for _, st := range streams {
		st.fail(err)
	}
	c.conn.Close()
}

// open allocates a stream id and announces the stream.
func (c *sendConn) open(info openInfo) (*sendStream, error) {
	payload, err := json.Marshal(info)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.next++
	st := &sendStream{c: c, id: c.next, wait: make(chan struct{})}
	c.streams[st.id] = st
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeMsg(c.bw, msgOpen, st.id, payload)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		return nil, err
	}
	return st, nil
}

// sendStream is the sender-side state of one wire stream.
type sendStream struct {
	c  *sendConn
	id uint32

	mu         sync.Mutex
	credits    int
	failed     error
	compressed bool          // receiver accepted encoded DATA frames
	wait       chan struct{} // closed and replaced on every grant/failure
}

func (s *sendStream) setCompressed() {
	s.mu.Lock()
	s.compressed = true
	s.mu.Unlock()
}

func (s *sendStream) isCompressed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compressed
}

func (s *sendStream) grant(n int) {
	s.mu.Lock()
	s.credits += n
	close(s.wait)
	s.wait = make(chan struct{})
	s.mu.Unlock()
}

func (s *sendStream) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	close(s.wait)
	s.wait = make(chan struct{})
	s.mu.Unlock()
}

// tryAcquire takes one send credit if immediately available. The fast
// path of Send: no credit means the sender is about to block, which is
// when buffered frames must be flushed.
func (s *sendStream) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil || s.credits <= 0 {
		return false
	}
	s.credits--
	return true
}

// acquire blocks until one send credit is available.
func (s *sendStream) acquire(ctx context.Context) error {
	s.mu.Lock()
	for {
		if s.failed != nil {
			err := s.failed
			s.mu.Unlock()
			return err
		}
		if s.credits > 0 {
			s.credits--
			s.mu.Unlock()
			return nil
		}
		ch := s.wait
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		s.mu.Lock()
	}
}

// finish forgets the stream after its terminal message.
func (s *sendStream) finish() {
	s.c.mu.Lock()
	delete(s.c.streams, s.id)
	s.c.mu.Unlock()
}

// wireSendPort is the hyracks.SendPort of one remote stream. The stream
// opens lazily on first use, so connectors that never ship a frame to a
// given partition still pay one OPEN (sent with their EOS).
type wireSendPort struct {
	t    *TCPTransport
	addr string
	info openInfo
	// stats, when set, accumulates the stream's on-wire DATA bytes
	// (post-compression, headers included) next to the connector's
	// payload counters.
	stats *hyracks.ConnStats

	once sync.Once
	st   *sendStream
	err  error
}

func (p *wireSendPort) ensure() (*sendStream, error) {
	p.once.Do(func() {
		c, err := p.t.connTo(p.addr)
		if err != nil {
			p.err = err
			return
		}
		p.st, p.err = c.open(p.info)
	})
	return p.st, p.err
}

func (p *wireSendPort) Send(ctx context.Context, pkt hyracks.Packet) error {
	st, err := p.ensure()
	if err != nil {
		return err
	}
	if pkt.Err != nil {
		return p.sendErr(st, pkt.Err)
	}
	if pkt.EOS {
		st.c.wmu.Lock()
		err := writeMsg(st.c.bw, msgEOS, st.id, nil)
		st.c.wmu.Unlock()
		st.finish()
		if err != nil {
			st.c.fail(err)
			return err
		}
		return nil
	}
	// DATA: one credit per frame in flight. Out of credits means this
	// sender is about to block — flush buffered frames everywhere first
	// so no receiver waits on bytes parked in a write buffer.
	if !st.tryAcquire() {
		p.t.flushDialed()
		if err := st.acquire(ctx); err != nil {
			return err
		}
	}
	st.c.wmu.Lock()
	var n int
	if st.isCompressed() {
		n, err = writeEncFrameMsg(st.c.bw, st.id, pkt.Frame, st.c.enc)
	} else {
		n, err = writeFrameMsg(st.c.bw, st.id, pkt.Frame)
	}
	st.c.wmu.Unlock()
	if err != nil {
		st.c.fail(err)
		return err
	}
	if p.stats != nil {
		p.stats.AddWireBytes(int64(9+pkt.Frame.FrameImageSize()), int64(n))
	}
	// The frame's bytes are on the wire; ownership returns to the pool.
	tuple.PutFrame(pkt.Frame)
	return nil
}

func (p *wireSendPort) sendErr(st *sendStream, failure error) error {
	st.c.wmu.Lock()
	err := writeMsg(st.c.bw, msgErr, st.id, []byte(failure.Error()))
	st.c.wmu.Unlock()
	st.finish()
	if err != nil {
		st.c.fail(err)
		return err
	}
	return nil
}

// TrySendErr propagates a producer failure without blocking: the socket
// write happens on a separate goroutine (ERR consumes no credit, and the
// receiving demultiplexer always drains, so the write completes as soon
// as the kernel buffers allow).
func (p *wireSendPort) TrySendErr(err error) {
	st, oerr := p.ensure()
	if oerr != nil {
		return
	}
	go p.sendErr(st, err)
}

package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The control plane connects each worker to the cluster controller with
// one long-lived TCP connection carrying newline-delimited JSON
// envelopes. The worker dials and sends a single registration request;
// once the controller has assembled the cluster it responds, and the
// connection flips direction: the controller issues RPCs (load this
// file, run this phase, cancel this job) and the worker answers. An
// envelope with a non-empty Method is a request; anything else is the
// response to the request with the same ID.

// Envelope is one control-plane message.
type Envelope struct {
	ID     int64           `json:"id"`
	Method string          `json:"method,omitempty"`
	Error  string          `json:"error,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// ControlConn frames envelopes over one connection. Reads are owned by
// a single goroutine; writes are serialized internally.
type ControlConn struct {
	conn net.Conn
	dec  *json.Decoder
	wmu  sync.Mutex
	enc  *json.Encoder
}

// DialControl opens a control connection to the cluster controller.
func DialControl(addr string) (*ControlConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial control %s: %w", addr, err)
	}
	if _, err := conn.Write([]byte(ctrlMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	return newControlConn(conn), nil
}

// AcceptControl wraps an accepted connection after verifying the
// control-plane preamble.
func AcceptControl(conn net.Conn) (*ControlConn, error) {
	magic := make([]byte, len(ctrlMagic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		return nil, err
	}
	if string(magic) != ctrlMagic {
		return nil, errors.New("wire: not a control connection")
	}
	return newControlConn(conn), nil
}

func newControlConn(conn net.Conn) *ControlConn {
	return &ControlConn{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

// Send writes one envelope.
func (c *ControlConn) Send(env Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(&env)
}

// Read blocks for the next envelope.
func (c *ControlConn) Read() (Envelope, error) {
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// Close closes the underlying connection (unblocking Read).
func (c *ControlConn) Close() error { return c.conn.Close() }

// RemoteAddr returns the peer address.
func (c *ControlConn) RemoteAddr() string { return c.conn.RemoteAddr().String() }

// ---------------------------------------------------------------------------
// Caller: the controller's side of an established worker connection.
// ---------------------------------------------------------------------------

// Caller issues RPCs over a control connection and matches responses to
// waiting calls. Start the read loop once the handshake is done.
type Caller struct {
	c      *ControlConn
	notify func(Envelope)

	mu      sync.Mutex
	next    int64
	pending map[int64]chan Envelope
	err     error
}

// NewCaller wraps an established connection.
func NewCaller(c *ControlConn) *Caller {
	return &Caller{c: c, pending: make(map[int64]chan Envelope)}
}

// OnNotify registers a handler for unsolicited requests arriving on
// this connection — envelopes with a non-empty Method, which cannot be
// the response to any outstanding call. The control plane is otherwise
// strictly controller-calls/worker-answers; notifications are the one
// reverse-direction message (a worker requesting a graceful drain). No
// reply is sent. Must be set before Start; handlers run on their own
// goroutine so they may issue RPCs back over the same connection.
func (k *Caller) OnNotify(fn func(Envelope)) { k.notify = fn }

// Start launches the response-matching read loop. It returns when the
// connection dies, failing every outstanding and future call.
func (k *Caller) Start() {
	go func() {
		for {
			env, err := k.c.Read()
			if err != nil {
				k.fail(fmt.Errorf("wire: control connection lost: %w", err))
				return
			}
			if env.Method != "" {
				// A request from the peer, not a response: dispatch it as
				// a notification (or drop it when no handler is set).
				if k.notify != nil {
					go k.notify(env)
				}
				continue
			}
			k.mu.Lock()
			ch := k.pending[env.ID]
			delete(k.pending, env.ID)
			k.mu.Unlock()
			if ch != nil {
				ch <- env
			}
		}
	}()
}

func (k *Caller) fail(err error) {
	k.mu.Lock()
	if k.err == nil {
		k.err = err
	}
	pend := k.pending
	k.pending = make(map[int64]chan Envelope)
	k.mu.Unlock()
	for _, ch := range pend {
		ch <- Envelope{Error: err.Error()}
	}
}

// Err returns the terminal connection error, if any.
func (k *Caller) Err() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err
}

// Call issues one request and blocks for its response (or ctx expiry —
// note an abandoned response is dropped by the read loop, not cancelled
// remotely; pair Call with an explicit cancel RPC for long phases).
func (k *Caller) Call(ctx context.Context, method string, params, result any) error {
	data, err := json.Marshal(params)
	if err != nil {
		return err
	}
	ch := make(chan Envelope, 1)
	k.mu.Lock()
	if k.err != nil {
		err := k.err
		k.mu.Unlock()
		return err
	}
	k.next++
	id := k.next
	k.pending[id] = ch
	k.mu.Unlock()

	if err := k.c.Send(Envelope{ID: id, Method: method, Data: data}); err != nil {
		k.mu.Lock()
		delete(k.pending, id)
		k.mu.Unlock()
		return err
	}
	select {
	case env := <-ch:
		if env.Error != "" {
			return errors.New(env.Error)
		}
		if result != nil && len(env.Data) > 0 {
			return json.Unmarshal(env.Data, result)
		}
		return nil
	case <-ctx.Done():
		k.mu.Lock()
		delete(k.pending, id)
		k.mu.Unlock()
		return ctx.Err()
	}
}

// ServeControl runs the worker's side of an established connection:
// each incoming request is dispatched to handler on its own goroutine
// and the return value (or error) is sent back under the request ID. It
// returns when the connection dies.
func ServeControl(c *ControlConn, handler func(method string, data json.RawMessage) (any, error)) error {
	for {
		env, err := c.Read()
		if err != nil {
			return err
		}
		if env.Method == "" {
			continue // stray response; nothing to match it to
		}
		go func(env Envelope) {
			resp := Envelope{ID: env.ID}
			out, err := handler(env.Method, env.Data)
			if err != nil {
				resp.Error = err.Error()
			} else if out != nil {
				data, merr := json.Marshal(out)
				if merr != nil {
					resp.Error = merr.Error()
				} else {
					resp.Data = data
				}
			}
			c.Send(resp)
		}(env)
	}
}

package wire

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pregelix/internal/hyracks"
	"pregelix/internal/tuple"
)

// The connector failure-path suite: producer Fail(err) propagation and
// context cancellation mid-stream, over both the in-process channel
// transport and loopback TCP. Each case asserts (a) the error surfaces,
// (b) no goroutine is leaked, and (c) no frame is stranded outside the
// pool (tuple.LeasedFrames returns to its pre-run level — the lease
// check the frame pool's double-release panics complement).

// failHarness runs a job factory under one transport and checks
// goroutine and frame-lease hygiene around it.
type failHarness struct {
	t       *testing.T
	name    string
	cluster *hyracks.Cluster
	opts    hyracks.ExecOptions
}

func newFailHarness(t *testing.T, name string, nodes int) *failHarness {
	t.Helper()
	h := &failHarness{t: t, name: name, cluster: testCluster(t, nodes)}
	if name == "tcp" {
		tr, err := NewTCPTransport(Config{ListenAddr: "127.0.0.1:0", ForceWire: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		local := nodeSet(h.cluster, 0, nodes)
		peers := make(map[hyracks.NodeID]string)
		for id := range local {
			peers[id] = tr.Addr()
		}
		tr.SetPeers(peers, local)
		h.opts = hyracks.ExecOptions{Transport: tr, LocalNodes: local}
	}
	return h
}

// settle polls until cond holds (failure paths finish asynchronously:
// best-effort ERR writes, demux drops, pump teardown).
func settle(t *testing.T, what string, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var detail string
	for time.Now().Before(deadline) {
		var ok bool
		if ok, detail = cond(); ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never settled: %s", what, detail)
}

// run executes one job and asserts hygiene afterwards.
func (h *failHarness) run(build func() *hyracks.JobSpec, ctx context.Context, wantErr bool) error {
	h.t.Helper()
	leases := tuple.LeasedFrames()
	goroutines := runtime.NumGoroutine()

	_, err := hyracks.RunJobWith(ctx, h.cluster, build(), h.opts)
	if wantErr && err == nil {
		h.t.Fatal("job succeeded, expected failure")
	}
	if !wantErr && err != nil {
		h.t.Fatal(err)
	}

	settle(h.t, "frame leases", func() (bool, string) {
		now := tuple.LeasedFrames()
		return now == leases, fmt.Sprintf("%d leased frames, baseline %d", now, leases)
	})
	settle(h.t, "goroutines", func() (bool, string) {
		now := runtime.NumGoroutine()
		// Transport-level goroutines (accept loops, per-connection demux)
		// are process-lifetime by design; per-job goroutines must drain.
		// A warmed-up harness has all connections open already, so the
		// count must return to the pre-run level (small scheduler slack).
		return now <= goroutines+2, fmt.Sprintf("%d goroutines, baseline %d", now, goroutines)
	})
	return err
}

// warm runs one healthy job so the TCP harness has its connections and
// demux goroutines established before baselines are taken.
func (h *failHarness) warm() {
	h.t.Helper()
	col := &shuffleCollector{}
	_, err := hyracks.RunJobWith(context.Background(), h.cluster,
		shuffleSpec(h.name+"-warm", 2, 2, 100, false, col), h.opts)
	if err != nil {
		h.t.Fatal(err)
	}
}

// failSpec builds a shuffle whose source partition 0 fails after n
// tuples; with merging it exercises the materializing writer and spool.
func failSpec(name string, nodes int, merging bool, boom error) *hyracks.JobSpec {
	spec := &hyracks.JobSpec{Name: name}
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "src",
		Partitions: nodes,
		NewSource: func(tc *hyracks.TaskContext) (hyracks.SourceRuntime, error) {
			part := tc.Partition
			return &hyracks.FuncSource{F: func(ctx context.Context, b *hyracks.BaseSource) error {
				for i := 0; ; i++ {
					if part == 0 && i == 2000 {
						return boom
					}
					if i >= 4000 { // other senders finish normally
						return nil
					}
					if err := ctx.Err(); err != nil {
						return err
					}
					if err := b.EmitFields(0, tuple.EncodeUint64(uint64(i*nodes+part)), []byte("xxxxxxxx")); err != nil {
						return err
					}
				}
			}}, nil
		},
	})
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "sink",
		Partitions: nodes,
		NewRuntime: func(tc *hyracks.TaskContext) (hyracks.PushRuntime, error) {
			return &hyracks.FuncRuntime{OnRef: func(_ *hyracks.BaseRuntime, r tuple.TupleRef) error {
				return nil
			}}, nil
		},
	})
	cd := &hyracks.ConnectorDesc{
		From: "src", To: "sink",
		Type:        hyracks.MToNPartitioning,
		Partitioner: hyracks.HashPartitioner(0),
		// Tiny windows keep senders blocked on backpressure when the
		// failure hits, exercising the unblock paths.
		BufferFrames: 1,
	}
	if merging {
		cd.Type = hyracks.MToNPartitioningMerging
		cd.Comparator = tuple.Field0RefCompare
	}
	spec.Connect(cd)
	return spec
}

func TestConnectorFailPropagation(t *testing.T) {
	for _, transport := range []string{"chan", "tcp"} {
		for _, merging := range []bool{false, true} {
			name := fmt.Sprintf("%s-%s", transport, map[bool]string{false: "plain", true: "merging"}[merging])
			t.Run(name, func(t *testing.T) {
				const nodes = 3
				h := newFailHarness(t, transport, nodes)
				h.warm()
				boom := errors.New("boom: " + name)
				for round := 0; round < 3; round++ {
					err := h.run(func() *hyracks.JobSpec {
						return failSpec(fmt.Sprintf("fail-%s-%d", name, round), nodes, merging, boom)
					}, context.Background(), true)
					if !errors.Is(err, boom) && err.Error() != boom.Error() {
						t.Fatalf("round %d: got error %v, want %v", round, err, boom)
					}
				}
			})
		}
	}
}

// cancelSpec builds a shuffle that never terminates on its own: sources
// emit forever and the sink stalls, so only context cancellation can end
// the job.
func cancelSpec(name string, nodes int, stall chan struct{}) *hyracks.JobSpec {
	spec := &hyracks.JobSpec{Name: name}
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "src",
		Partitions: nodes,
		NewSource: func(tc *hyracks.TaskContext) (hyracks.SourceRuntime, error) {
			part := tc.Partition
			return &hyracks.FuncSource{F: func(ctx context.Context, b *hyracks.BaseSource) error {
				for i := 0; ; i++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					if err := b.EmitFields(0, tuple.EncodeUint64(uint64(i*nodes+part)), []byte("payload")); err != nil {
						return err
					}
				}
			}}, nil
		},
	})
	spec.AddOp(&hyracks.OperatorDesc{
		ID:         "sink",
		Partitions: nodes,
		NewRuntime: func(tc *hyracks.TaskContext) (hyracks.PushRuntime, error) {
			return &hyracks.FuncRuntime{OnRef: func(_ *hyracks.BaseRuntime, r tuple.TupleRef) error {
				select {
				case <-stall: // held open until the test cancels
				case <-tc.Ctx.Done():
				}
				return tc.Ctx.Err()
			}}, nil
		},
	})
	spec.Connect(&hyracks.ConnectorDesc{
		From: "src", To: "sink",
		Type:         hyracks.MToNPartitioning,
		Partitioner:  hyracks.HashPartitioner(0),
		BufferFrames: 1,
	})
	return spec
}

func TestConnectorContextCancelMidStream(t *testing.T) {
	for _, transport := range []string{"chan", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			const nodes = 3
			h := newFailHarness(t, transport, nodes)
			h.warm()
			for round := 0; round < 3; round++ {
				ctx, cancel := context.WithCancel(context.Background())
				stall := make(chan struct{})
				go func() {
					time.Sleep(50 * time.Millisecond)
					cancel()
					close(stall)
				}()
				err := h.run(func() *hyracks.JobSpec {
					return cancelSpec(fmt.Sprintf("cancel-%s-%d", transport, round), nodes, stall)
				}, ctx, true)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("round %d: got %v, want context.Canceled", round, err)
				}
				cancel()
			}
		})
	}
}

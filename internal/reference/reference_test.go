package reference

import (
	"testing"

	"pregelix/internal/graphgen"
	"pregelix/pregel"
	"pregelix/pregel/algorithms"
)

func TestSSSPKnownDistances(t *testing.T) {
	// 1 -2-> 2 -3-> 3, 1 -10-> 3 (weights); shortest 1->3 = 5.
	g := &graphgen.Graph{
		Adj:     map[uint64][]uint64{1: {2, 3}, 2: {3}, 3: nil},
		Weights: map[uint64][]float32{1: {2, 10}, 2: {3}, 3: nil},
	}
	job := algorithms.NewSSSPJob("sssp", "", "", 1)
	e := NewFromGraph(job, g)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	dist := func(id uint64) float64 {
		return float64(*e.Vertices()[id].Value.(*pregel.Double))
	}
	if dist(1) != 0 || dist(2) != 2 || dist(3) != 5 {
		t.Fatalf("distances: %v %v %v", dist(1), dist(2), dist(3))
	}
}

func TestCCLabels(t *testing.T) {
	g := &graphgen.Graph{Adj: map[uint64][]uint64{
		1: {2}, 2: {1}, 3: {4}, 4: {3}, 5: nil,
	}}
	job := algorithms.NewConnectedComponentsJob("cc", "", "")
	e := NewFromGraph(job, g)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	label := func(id uint64) int64 {
		return int64(*e.Vertices()[id].Value.(*pregel.Int64))
	}
	if label(1) != 1 || label(2) != 1 || label(3) != 3 || label(4) != 3 || label(5) != 5 {
		t.Fatalf("labels: %d %d %d %d %d", label(1), label(2), label(3), label(4), label(5))
	}
}

func TestTerminationOnAllHalted(t *testing.T) {
	g := &graphgen.Graph{Adj: map[uint64][]uint64{1: nil, 2: nil}}
	job := &pregel.Job{
		Name: "noop",
		Program: pregel.ProgramFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
			v.VoteToHalt()
			return nil
		}),
		Codec: pregel.Codec{NewVertexValue: pregel.NewInt64, NewMessage: pregel.NewInt64},
	}
	e := NewFromGraph(job, g)
	steps, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("noop program took %d supersteps", steps)
	}
}

func TestMaxSuperstepsCap(t *testing.T) {
	g := &graphgen.Graph{Adj: map[uint64][]uint64{1: nil}}
	job := &pregel.Job{
		Name: "loop",
		Program: pregel.ProgramFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
			m := pregel.Int64(1)
			ctx.SendMessage(v.ID, &m) // self-loop forever
			return nil
		}),
		Codec:         pregel.Codec{NewVertexValue: pregel.NewInt64, NewMessage: pregel.NewInt64},
		MaxSupersteps: 7,
	}
	e := NewFromGraph(job, g)
	steps, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 7 {
		t.Fatalf("cap at 7, ran %d", steps)
	}
}

func TestMessageCreatesVertex(t *testing.T) {
	g := &graphgen.Graph{Adj: map[uint64][]uint64{1: nil}}
	job := &pregel.Job{
		Name: "ghost",
		Program: pregel.ProgramFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
			if ctx.Superstep() == 1 && v.ID == 1 {
				m := pregel.Int64(5)
				ctx.SendMessage(77, &m)
			}
			v.VoteToHalt()
			return nil
		}),
		Codec: pregel.Codec{NewVertexValue: pregel.NewInt64, NewMessage: pregel.NewInt64},
	}
	e := NewFromGraph(job, g)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Vertices()[77]; !ok {
		t.Fatal("vertex 77 not materialized")
	}
}

// Package reference is a minimal single-threaded Pregel interpreter used
// as a semantic oracle in tests: Pregelix's dataflow execution and the
// baseline engines must produce exactly the results this interpreter
// produces for any program and graph.
package reference

import (
	"fmt"
	"sort"

	"pregelix/internal/graphgen"
	"pregelix/pregel"
)

// Engine executes a pregel.Job in memory with textbook BSP semantics.
type Engine struct {
	job      *pregel.Job
	vertices map[uint64]*pregel.Vertex
	inbox    map[uint64][][]byte // serialized messages per destination
	agg      []byte
	step     int64
	nv, ne   int64
}

// NewFromGraph builds an engine over a generated graph, initializing
// vertex values to the codec's zero value.
func NewFromGraph(job *pregel.Job, g *graphgen.Graph) *Engine {
	e := &Engine{
		job:      job,
		vertices: make(map[uint64]*pregel.Vertex, g.NumVertices()),
		inbox:    map[uint64][][]byte{},
	}
	for id, edges := range g.Adj {
		v := &pregel.Vertex{ID: pregel.VertexID(id), Value: job.Codec.NewVertexValue()}
		for i, d := range edges {
			var ev pregel.Value
			if g.Weights != nil && job.Codec.NewEdgeValue != nil {
				w := pregel.Float(g.Weights[id][i])
				ev = &w
			}
			v.Edges = append(v.Edges, pregel.Edge{Dest: pregel.VertexID(d), Value: ev})
		}
		e.vertices[id] = v
		e.nv++
		e.ne += int64(len(edges))
	}
	return e
}

type refCtx struct {
	e       *Engine
	outbox  map[uint64][][]byte
	agg     pregel.Value
	adds    []*pregel.Vertex
	removes []pregel.VertexID
	sent    int
	err     error
}

func (c *refCtx) Superstep() int64   { return c.e.step }
func (c *refCtx) NumVertices() int64 { return c.e.nv }
func (c *refCtx) NumEdges() int64    { return c.e.ne }

func (c *refCtx) GlobalAggregate() pregel.Value {
	if c.e.agg == nil || c.e.job.Aggregator == nil {
		return nil
	}
	v := c.e.job.Aggregator.Zero()
	if err := v.Unmarshal(c.e.agg); err != nil {
		c.err = err
		return nil
	}
	return v
}

func (c *refCtx) Config(key string) string { return c.e.job.Config[key] }

func (c *refCtx) SendMessage(to pregel.VertexID, m pregel.Value) {
	c.outbox[uint64(to)] = append(c.outbox[uint64(to)], pregel.MarshalValue(m))
	c.sent++
}

func (c *refCtx) Aggregate(v pregel.Value) {
	if c.e.job.Aggregator == nil {
		c.err = fmt.Errorf("reference: Aggregate without Aggregator")
		return
	}
	if c.agg == nil {
		c.agg = c.e.job.Aggregator.Merge(c.e.job.Aggregator.Zero(), v)
		return
	}
	c.agg = c.e.job.Aggregator.Merge(c.agg, v)
}

func (c *refCtx) AddVertex(v *pregel.Vertex) { c.adds = append(c.adds, v) }

func (c *refCtx) RemoveVertex(id pregel.VertexID) { c.removes = append(c.removes, id) }

// Run executes supersteps until Pregel termination (all halted, no
// messages) or maxSupersteps (0 = the job's own cap or unlimited).
func (e *Engine) Run(maxSupersteps int) (int64, error) {
	if maxSupersteps == 0 {
		maxSupersteps = e.job.MaxSupersteps
	}
	for {
		e.step++
		if maxSupersteps > 0 && e.step > int64(maxSupersteps) {
			e.step--
			return e.step, nil
		}
		ctx := &refCtx{e: e, outbox: map[uint64][][]byte{}}
		haltAll := true

		ids := make([]uint64, 0, len(e.vertices))
		for id := range e.vertices {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		for _, id := range ids {
			v := e.vertices[id]
			raw, hasMsg := e.inbox[id]
			if v.Halted && !hasMsg && e.step > 1 {
				continue
			}
			if hasMsg || e.step == 1 {
				v.Halted = false
			}
			msgs, err := e.decodeMsgs(raw)
			if err != nil {
				return e.step, err
			}
			before := ctx.sent
			if err := e.job.Program.Compute(ctx, v, msgs); err != nil {
				return e.step, err
			}
			if ctx.err != nil {
				return e.step, ctx.err
			}
			if !(v.Halted && ctx.sent == before) {
				haltAll = false
			}
		}

		// Messages to nonexistent vertices instantiate them next
		// superstep (handled implicitly: delivery below creates them).
		for dest := range ctx.outbox {
			if _, ok := e.vertices[dest]; !ok {
				// Vertex will be materialized on delivery.
				haltAll = false
			}
		}

		// Apply mutations: deletions before insertions, resolver settles.
		resolver := e.job.ResolverOrDefault()
		muts := map[uint64]*struct {
			adds    []*pregel.Vertex
			removed bool
		}{}
		for _, id := range ctx.removes {
			m := muts[uint64(id)]
			if m == nil {
				m = &struct {
					adds    []*pregel.Vertex
					removed bool
				}{}
				muts[uint64(id)] = m
			}
			m.removed = true
		}
		for _, v := range ctx.adds {
			m := muts[uint64(v.ID)]
			if m == nil {
				m = &struct {
					adds    []*pregel.Vertex
					removed bool
				}{}
				muts[uint64(v.ID)] = m
			}
			m.adds = append(m.adds, v)
		}
		for id, m := range muts {
			existing := e.vertices[id]
			hadEdges := int64(0)
			if existing != nil {
				hadEdges = int64(len(existing.Edges))
			}
			final := resolver.Resolve(pregel.VertexID(id), existing, m.adds, m.removed)
			switch {
			case final == nil && existing != nil:
				delete(e.vertices, id)
				e.nv--
				e.ne -= hadEdges
			case final != nil:
				if existing == nil {
					e.nv++
					e.ne += int64(len(final.Edges))
				} else {
					e.ne += int64(len(final.Edges)) - hadEdges
				}
				e.vertices[id] = final
			}
		}

		// Deliver messages; materialize missing destinations.
		e.inbox = map[uint64][][]byte{}
		totalMsgs := 0
		for dest, raw := range ctx.outbox {
			if _, ok := e.vertices[dest]; !ok {
				e.vertices[dest] = &pregel.Vertex{
					ID:    pregel.VertexID(dest),
					Value: e.job.Codec.NewVertexValue(),
				}
				e.nv++
			}
			e.inbox[dest] = raw
			totalMsgs += len(raw)
		}

		e.agg = nil
		if ctx.agg != nil {
			e.agg = pregel.MarshalValue(ctx.agg)
		}
		if haltAll && totalMsgs == 0 {
			return e.step, nil
		}
	}
}

func (e *Engine) decodeMsgs(raw [][]byte) ([]pregel.Value, error) {
	if raw == nil {
		return nil, nil
	}
	out := make([]pregel.Value, len(raw))
	for i, b := range raw {
		m := e.job.Codec.NewMessage()
		if err := m.Unmarshal(b); err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Vertices returns the final vertex set keyed by id.
func (e *Engine) Vertices() map[uint64]*pregel.Vertex { return e.vertices }

// Aggregate returns the final global aggregate bytes (nil if none).
func (e *Engine) Aggregate() []byte { return e.agg }

// Supersteps returns the number of supersteps executed.
func (e *Engine) Supersteps() int64 { return e.step }

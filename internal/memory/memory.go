// Package memory provides metered memory budgets for the simulated
// shared-nothing cluster.
//
// Every simulated machine (node controller) owns a Budget representing its
// physical RAM. Subsystems carve child budgets out of it: the buffer cache
// for vertex access methods, per-operator group-by buffers, and network
// channel buffers, mirroring the memory layout of Section 5.4 of the
// paper. Pregelix operators respond to exhaustion by spilling to disk;
// process-centric baseline engines instead surface ErrOutOfMemory, which
// reproduces the failure boundaries of the paper's Figures 10-13.
package memory

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfMemory is returned when an allocation would exceed a budget and
// the owner has opted into hard failure (process-centric engines).
var ErrOutOfMemory = errors.New("memory: out of memory")

// Budget meters a fixed capacity of bytes. The zero value is unusable; use
// NewBudget. A Budget is safe for concurrent use.
type Budget struct {
	name     string
	capacity int64

	mu     sync.Mutex
	used   int64
	peak   int64
	parent *Budget
}

// NewBudget creates a root budget with the given byte capacity. A capacity
// of zero or less means unlimited.
func NewBudget(name string, capacity int64) *Budget {
	return &Budget{name: name, capacity: capacity}
}

// Child carves a sub-budget out of b. Allocations against the child are
// charged to both the child and b, so a machine-wide budget observes all
// of its subsystems.
func (b *Budget) Child(name string, capacity int64) *Budget {
	return &Budget{name: name, capacity: capacity, parent: b}
}

// Capacity returns the configured byte capacity (<=0 means unlimited).
func (b *Budget) Capacity() int64 { return b.capacity }

// Name returns the budget's diagnostic name.
func (b *Budget) Name() string { return b.name }

// Used returns the bytes currently allocated.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of allocated bytes.
func (b *Budget) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Allocate charges n bytes against the budget, failing with
// ErrOutOfMemory when capacity would be exceeded. n must be non-negative.
func (b *Budget) Allocate(n int64) error {
	if n < 0 {
		return fmt.Errorf("memory: negative allocation %d", n)
	}
	if b.parent != nil {
		if err := b.parent.Allocate(n); err != nil {
			return err
		}
	}
	b.mu.Lock()
	if b.capacity > 0 && b.used+n > b.capacity {
		b.mu.Unlock()
		if b.parent != nil {
			b.parent.Release(n)
		}
		return fmt.Errorf("%w: budget %q used %d + %d > cap %d",
			ErrOutOfMemory, b.name, b.used, n, b.capacity)
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	b.mu.Unlock()
	return nil
}

// TryAllocate reports whether n bytes fit, charging them if so. It is a
// convenience for spill decisions: operators that can spill call
// TryAllocate and switch to disk when it returns false.
func (b *Budget) TryAllocate(n int64) bool {
	return b.Allocate(n) == nil
}

// Release returns n bytes to the budget. Releasing more than allocated is
// clamped to zero to keep accounting robust against double-release bugs in
// failure paths.
func (b *Budget) Release(n int64) {
	if n < 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
	if b.parent != nil {
		b.parent.Release(n)
	}
}

// Remaining returns capacity-used, or a very large number when unlimited.
func (b *Budget) Remaining() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		return 1 << 62
	}
	r := b.capacity - b.used
	if r < 0 {
		r = 0
	}
	return r
}

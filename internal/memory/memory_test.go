package memory

import (
	"errors"
	"sync"
	"testing"
)

func TestBudgetBasic(t *testing.T) {
	b := NewBudget("m", 100)
	if err := b.Allocate(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Allocate(50); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if b.Used() != 60 {
		t.Fatalf("failed alloc must not charge: used=%d", b.Used())
	}
	b.Release(30)
	if err := b.Allocate(50); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 80 || b.Peak() != 80 {
		t.Fatalf("used=%d peak=%d", b.Used(), b.Peak())
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget("u", 0)
	if err := b.Allocate(1 << 40); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() < 1<<61 {
		t.Fatal("unlimited budget should report huge remaining")
	}
}

func TestChildChargesParent(t *testing.T) {
	parent := NewBudget("machine", 100)
	child := parent.Child("cache", 80)
	if err := child.Allocate(50); err != nil {
		t.Fatal(err)
	}
	if parent.Used() != 50 {
		t.Fatalf("parent used %d want 50", parent.Used())
	}
	// Child has room but parent does not.
	other := parent.Child("op", 80)
	if err := other.Allocate(60); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want parent OOM, got %v", err)
	}
	// Failed child alloc must not leak parent charge.
	if parent.Used() != 50 {
		t.Fatalf("parent used %d after failed child alloc, want 50", parent.Used())
	}
	child.Release(50)
	if parent.Used() != 0 {
		t.Fatalf("release did not propagate: parent used %d", parent.Used())
	}
}

func TestChildCapEnforced(t *testing.T) {
	parent := NewBudget("machine", 1000)
	child := parent.Child("groupby", 100)
	if err := child.Allocate(150); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("child cap not enforced: %v", err)
	}
	if parent.Used() != 0 {
		t.Fatalf("parent charged on child failure: %d", parent.Used())
	}
}

func TestReleaseClamp(t *testing.T) {
	b := NewBudget("c", 10)
	b.Release(5)
	if b.Used() != 0 {
		t.Fatal("over-release must clamp at zero")
	}
	if err := b.Allocate(-1); err == nil {
		t.Fatal("negative allocation must error")
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget("conc", 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := b.Allocate(8); err != nil {
					t.Error(err)
					return
				}
			}
			for j := 0; j < 1000; j++ {
				b.Release(8)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("used %d after balanced alloc/release", b.Used())
	}
	if b.Peak() == 0 {
		t.Fatal("peak not recorded")
	}
}

func TestTryAllocate(t *testing.T) {
	b := NewBudget("t", 10)
	if !b.TryAllocate(10) {
		t.Fatal("should fit")
	}
	if b.TryAllocate(1) {
		t.Fatal("should not fit")
	}
}

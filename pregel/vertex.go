package pregel

import (
	"encoding/binary"
	"fmt"
)

// VertexID identifies a vertex. IDs are encoded big-endian in the engine
// so byte order equals numeric order.
type VertexID uint64

// Edge is one outgoing edge with an optional user-defined value.
type Edge struct {
	Dest  VertexID
	Value Value
}

// Vertex is one row of the Vertex relation (Table 1): identifier, halt
// flag, user value, and outgoing edges. Compute mutates it in place.
type Vertex struct {
	ID     VertexID
	Halted bool
	Value  Value
	Edges  []Edge
}

// VoteToHalt deactivates the vertex; it is reactivated automatically if
// it receives a message in a later superstep.
func (v *Vertex) VoteToHalt() { v.Halted = true }

// Activate clears the halt flag.
func (v *Vertex) Activate() { v.Halted = false }

// AddEdge appends an outgoing edge.
func (v *Vertex) AddEdge(dest VertexID, value Value) {
	v.Edges = append(v.Edges, Edge{Dest: dest, Value: value})
}

// RemoveEdge removes all edges to dest, reporting whether any existed.
func (v *Vertex) RemoveEdge(dest VertexID) bool {
	out := v.Edges[:0]
	removed := false
	for _, e := range v.Edges {
		if e.Dest == dest {
			removed = true
			continue
		}
		out = append(out, e)
	}
	v.Edges = out
	return removed
}

// Codec serializes vertices and message lists using the job's value
// factories; the engine stores and ships only the encoded forms.
type Codec struct {
	// NewVertexValue creates a zero vertex value; required.
	NewVertexValue func() Value
	// NewEdgeValue creates a zero edge value; nil means edges carry no
	// value.
	NewEdgeValue func() Value
	// NewMessage creates a zero message; required for jobs that send
	// messages.
	NewMessage func() Value
}

// Vertex record layout:
//
//	u8  halt
//	u32 valueLen | value bytes
//	u32 edgeCount | per edge: u64 dest, u32 evLen, ev bytes

// EncodeVertex serializes v (without its ID, which is the index key).
func (c *Codec) EncodeVertex(v *Vertex) []byte {
	buf := make([]byte, 0, 16+len(v.Edges)*12)
	if v.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	val := MarshalValue(v.Value)
	buf = appendU32(buf, uint32(len(val)))
	buf = append(buf, val...)
	buf = appendU32(buf, uint32(len(v.Edges)))
	for _, e := range v.Edges {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(e.Dest))
		buf = append(buf, b[:]...)
		ev := MarshalValue(e.Value)
		buf = appendU32(buf, uint32(len(ev)))
		buf = append(buf, ev...)
	}
	return buf
}

// DecodeVertex deserializes a vertex record stored under the given id.
func (c *Codec) DecodeVertex(id VertexID, data []byte) (*Vertex, error) {
	if len(data) < 9 {
		return nil, fmt.Errorf("pregel: vertex record too short (%d bytes)", len(data))
	}
	v := &Vertex{ID: id, Halted: data[0] != 0}
	off := 1
	vlen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+vlen > len(data) {
		return nil, fmt.Errorf("pregel: vertex value overruns record")
	}
	v.Value = c.NewVertexValue()
	if vlen > 0 {
		if err := v.Value.Unmarshal(data[off : off+vlen]); err != nil {
			return nil, err
		}
	} else if err := v.Value.Unmarshal(data[off:off]); err != nil {
		// Zero-length encodings are legal only for types that accept
		// them (e.g. Bytes); other types keep their factory zero, the
		// NULL-fields semantics of the full outer join's left case.
		_ = err
	}
	off += vlen
	if off+4 > len(data) {
		return nil, fmt.Errorf("pregel: vertex edge count missing")
	}
	ec := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	v.Edges = make([]Edge, 0, ec)
	for i := 0; i < ec; i++ {
		if off+12 > len(data) {
			return nil, fmt.Errorf("pregel: edge %d overruns record", i)
		}
		dest := VertexID(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		evLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+evLen > len(data) {
			return nil, fmt.Errorf("pregel: edge %d value overruns record", i)
		}
		var ev Value
		if evLen > 0 && c.NewEdgeValue != nil {
			ev = c.NewEdgeValue()
			if err := ev.Unmarshal(data[off : off+evLen]); err != nil {
				return nil, err
			}
		}
		off += evLen
		v.Edges = append(v.Edges, Edge{Dest: dest, Value: ev})
	}
	return v, nil
}

// Message-list layout: u32 count | per message: u32 len, bytes.
// The Msg relation's payload field always holds such a list; a combined
// message is a one-element list.

// EncodeMsgList serializes messages into one payload.
func EncodeMsgList(msgs ...Value) []byte {
	buf := appendU32(nil, uint32(len(msgs)))
	for _, m := range msgs {
		b := MarshalValue(m)
		buf = appendU32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// AppendMsgLists concatenates two encoded message lists (the default
// no-combiner behaviour: gather all messages for a destination).
func AppendMsgLists(a, b []byte) []byte {
	na := binary.LittleEndian.Uint32(a)
	nb := binary.LittleEndian.Uint32(b)
	out := appendU32(nil, na+nb)
	out = append(out, a[4:]...)
	out = append(out, b[4:]...)
	return out
}

// DecodeMsgList deserializes a message payload with the codec.
func (c *Codec) DecodeMsgList(data []byte) ([]Value, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("pregel: message list too short")
	}
	n := int(binary.LittleEndian.Uint32(data))
	off := 4
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("pregel: message %d header overruns", i)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("pregel: message %d overruns", i)
		}
		m := c.NewMessage()
		if err := m.Unmarshal(data[off : off+l]); err != nil {
			return nil, err
		}
		off += l
		out = append(out, m)
	}
	return out, nil
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

package algorithms

import (
	"fmt"
	"math"
	"strconv"

	"pregelix/pregel"
)

// DeltaPageRankEpsilonKey configures the residual threshold below which
// a rank increment is not propagated (default 1e-9).
const DeltaPageRankEpsilonKey = "deltapagerank.epsilon"

// deltaPageRank is the push/residual formulation of PageRank: instead of
// recomputing every rank from scratch each round (the pull formulation
// of pageRank), each vertex accumulates received mass into its value and
// pushes only the CHANGE in its per-edge contribution since the last
// push. The cumulative mass pushed down each edge is kept as the edge's
// value, so the fixed point satisfies
//
//	rank(v) = 0.15/N + sum over in-edges u->v of 0.85*rank(u)/deg(u)
//
// — exact PageRank, reached when every residual falls below epsilon.
//
// Because all state needed to resume is in the vertex and edge values,
// the fixed point can be refreshed incrementally: after edge additions,
// re-running only the mutated vertices (the delta subsystem's dirty
// frontier) re-converges to the exact ranks of the new graph — a new
// edge starts with zero pushed mass and the source's changed out-degree
// shifts every residual, so corrections ripple outward exactly as far
// as they matter. Edge removals and vertex churn change N or strand
// already-pushed mass and need a from-scratch run.
//
// Inputs must be unweighted adjacency lines: the edge value slot is
// owned by the algorithm (cumulative pushed mass), not the input.
type deltaPageRank struct{}

func (deltaPageRank) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	eps := 1e-9
	if s := ctx.Config(DeltaPageRankEpsilonKey); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("algorithms: bad %s: %w", DeltaPageRankEpsilonKey, err)
		}
		eps = f
	}
	val := v.Value.(*pregel.Double)
	if ctx.Superstep() == 1 {
		// Seed the teleport mass exactly once; delta refreshes start past
		// superstep 1 and inherit the sealed run's accumulated values.
		*val += pregel.Double(0.15 / float64(ctx.NumVertices()))
	}
	for _, m := range msgs {
		*val += *m.(*pregel.Double)
	}
	if len(v.Edges) > 0 {
		target := 0.85 * float64(*val) / float64(len(v.Edges))
		for i := range v.Edges {
			// The edge value slot is algorithm state; anything else there
			// (nil on a fresh edge, an input weight) counts as nothing sent.
			sent := 0.0
			if d, ok := v.Edges[i].Value.(*pregel.Double); ok {
				sent = float64(*d)
			}
			inc := target - sent
			if math.Abs(inc) > eps {
				m := pregel.Double(inc)
				ctx.SendMessage(v.Edges[i].Dest, &m)
				if d, ok := v.Edges[i].Value.(*pregel.Double); ok {
					*d = pregel.Double(target)
				} else {
					d := pregel.Double(target)
					v.Edges[i].Value = &d
				}
			}
		}
	}
	v.VoteToHalt()
	return nil
}

// NewDeltaPageRankJob builds a residual PageRank job that runs to a
// fixed point (message-driven, so it converges rather than iterating a
// fixed count) and can be incrementally refreshed after edge additions
// via the delta-superstep subsystem. epsilon <= 0 selects the default.
func NewDeltaPageRankJob(name, input, output string, epsilon float64) *pregel.Job {
	if epsilon <= 0 {
		epsilon = 1e-9
	}
	return &pregel.Job{
		Name:    name,
		Program: deltaPageRank{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewDouble,
			NewEdgeValue:   pregel.NewDouble,
			NewMessage:     pregel.NewDouble,
		},
		Combiner: SumCombiner(),
		Join:     pregel.FullOuterJoin,
		GroupBy:  pregel.SortGroupBy,
		// Residual propagation sparsifies as it converges; let the plan
		// advisor flip to the left-outer-join plan when messages thin out.
		AutoPlan:      true,
		Connector:     pregel.UnmergeConnector,
		Storage:       pregel.BTreeStorage,
		InputPath:     input,
		OutputPath:    output,
		MaxSupersteps: 500, // backstop; convergence halts far earlier
		Config: map[string]string{
			DeltaPageRankEpsilonKey: strconv.FormatFloat(epsilon, 'g', -1, 64),
		},
	}
}

package algorithms

import (
	"strconv"

	"pregelix/pregel"
)

// Random-walk graph sampling (the paper used exactly this, built on
// Pregelix, to create the scaled-down Webmap samples of Table 3).
// A configurable number of walkers start at seed vertices and take a
// fixed number of steps; visited vertices are marked. Randomness is
// a deterministic hash of (walker, superstep, vertex) so runs are
// reproducible.

// Config keys for the random walk sampler.
const (
	SampleWalkersKey = "sample.walkers" // number of walkers (default 16)
	SampleStepsKey   = "sample.steps"   // steps per walker (default 8)
	SampleSeedKey    = "sample.seed"    // hash seed (default 1)
)

type randomWalkSample struct{}

func (randomWalkSample) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	walkers := int64(16)
	steps := int64(8)
	seed := uint64(1)
	if s := ctx.Config(SampleWalkersKey); s != "" {
		walkers, _ = strconv.ParseInt(s, 10, 64)
	}
	if s := ctx.Config(SampleStepsKey); s != "" {
		steps, _ = strconv.ParseInt(s, 10, 64)
	}
	if s := ctx.Config(SampleSeedKey); s != "" {
		seed, _ = strconv.ParseUint(s, 10, 64)
	}
	val := v.Value.(*pregel.Bool)

	if ctx.Superstep() == 1 {
		*val = false
		// Seed walkers on the vertices whose hash lands in [0, walkers).
		if int64(mix(seed, uint64(v.ID))%uint64(maxI64(ctx.NumVertices(), 1))) < walkers {
			*val = true
			forwardWalker(ctx, v, seed)
		}
		v.VoteToHalt()
		return nil
	}
	if ctx.Superstep() > steps {
		v.VoteToHalt()
		return nil
	}
	if len(msgs) > 0 {
		*val = true
		forwardWalker(ctx, v, seed)
	}
	v.VoteToHalt()
	return nil
}

func forwardWalker(ctx pregel.Context, v *pregel.Vertex, seed uint64) {
	if len(v.Edges) == 0 {
		return
	}
	pick := mix(seed^uint64(ctx.Superstep()), uint64(v.ID)) % uint64(len(v.Edges))
	t := pregel.Bool(true)
	ctx.SendMessage(v.Edges[pick].Dest, &t)
}

// mix is a 64-bit finalizer-style hash for deterministic pseudo-random
// decisions inside compute UDFs.
func mix(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// NewRandomWalkSampleJob builds a graph sampling job; output vertices
// with value true form the sampled subgraph.
func NewRandomWalkSampleJob(name, input, output string, walkers, steps int) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: randomWalkSample{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewBool,
			NewMessage:     pregel.NewBool,
		},
		Combiner:   FirstCombiner(),
		Join:       pregel.LeftOuterJoin,
		GroupBy:    pregel.HashSortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			SampleWalkersKey: strconv.Itoa(walkers),
			SampleStepsKey:   strconv.Itoa(steps),
		},
	}
}

package algorithms

import (
	"math"
	"strconv"

	"pregelix/pregel"
)

// SourceIDKey configures the source vertex for SSSP/reachability/BFS
// (the paper's "pregelix.sssp.sourceId").
const SourceIDKey = "pregelix.sssp.sourceId"

// shortestPaths is the message-sparse single source shortest paths
// program of Figure 9: only vertices whose distance improved send
// messages, so after the frontier passes most vertices are halted —
// exactly the workload the left-outer-join plan accelerates (up to 15x
// over Giraph in Figure 15).
type shortestPaths struct{}

func (shortestPaths) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	sourceID := uint64(1)
	if s := ctx.Config(SourceIDKey); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			sourceID = n
		}
	}
	val := v.Value.(*pregel.Double)
	if ctx.Superstep() == 1 {
		*val = pregel.Double(math.MaxFloat64)
	}
	minDist := math.MaxFloat64
	if uint64(v.ID) == sourceID {
		minDist = 0
	}
	for _, m := range msgs {
		if d := float64(*m.(*pregel.Double)); d < minDist {
			minDist = d
		}
	}
	if minDist < float64(*val) {
		*val = pregel.Double(minDist)
		for _, e := range v.Edges {
			w := 1.0
			if f, ok := e.Value.(*pregel.Float); ok && f != nil {
				w = float64(*f)
			}
			out := pregel.Double(minDist + w)
			ctx.SendMessage(e.Dest, &out)
		}
	}
	v.VoteToHalt()
	return nil
}

// MinDoubleCombiner keeps the minimum Double message (the
// DoubleMinCombiner of Figure 9).
func MinDoubleCombiner() pregel.Combiner {
	return pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value {
		if *b.(*pregel.Double) < *a.(*pregel.Double) {
			return b
		}
		return a
	})
}

// NewSSSPJob builds a single source shortest paths job with the plan
// hints of Figure 9's main function: left outer join, HashSort group-by,
// unmerged connector.
func NewSSSPJob(name, input, output string, sourceID uint64) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: shortestPaths{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewDouble,
			NewEdgeValue:   pregel.NewFloat,
			NewMessage:     pregel.NewDouble,
		},
		Combiner:   MinDoubleCombiner(),
		Join:       pregel.LeftOuterJoin,
		GroupBy:    pregel.HashSortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			SourceIDKey: strconv.FormatUint(sourceID, 10),
		},
	}
}

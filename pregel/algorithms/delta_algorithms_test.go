package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"pregelix/internal/graphgen"
	"pregelix/pregel"
)

func TestDeltaPageRankMatchesClassic(t *testing.T) {
	// The residual formulation's fixed point must agree with the classic
	// pull formulation iterated to convergence, vertex by vertex.
	g := graphgen.BTC(300, 5, 7)
	delta := runRef(t, NewDeltaPageRankJob("dpr", "", "", 1e-12), g)
	classic := runRef(t, NewPageRankJob("pr", "", "", 80), g)
	for id, v := range classic.Vertices() {
		want := float64(*v.Value.(*pregel.Double))
		got := float64(*delta.Vertices()[id].Value.(*pregel.Double))
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("rank(%d) = %.12f, classic %.12f", id, got, want)
		}
	}
}

func TestDeltaPageRankMassConserved(t *testing.T) {
	g := graphgen.BTC(200, 6, 3) // undirected => no dangling vertices
	e := runRef(t, NewDeltaPageRankJob("dpr", "", "", 1e-12), g)
	sum := 0.0
	for _, v := range e.Vertices() {
		sum += float64(*v.Value.(*pregel.Double))
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Fatalf("rank mass %f, want 1.0", sum)
	}
}

// kCoreOracle peels vertices of degree < k until a fixed point, the
// textbook sequential k-core algorithm.
func kCoreOracle(g *graphgen.Graph, k int) map[uint64]bool {
	in := map[uint64]bool{}
	for id := range g.Adj {
		in[id] = true
	}
	for changed := true; changed; {
		changed = false
		for id := range g.Adj {
			if !in[id] {
				continue
			}
			deg := 0
			for _, d := range g.Adj[id] {
				if in[d] && d != id {
					deg++
				}
			}
			if deg < k {
				in[id] = false
				changed = true
			}
		}
	}
	return in
}

func kCoreMember(v *pregel.Vertex) bool {
	for _, id := range *v.Value.(*pregel.VIDList) {
		if id == uint64(v.ID) {
			return false
		}
	}
	return true
}

func TestKCoreAgainstPeelingOracle(t *testing.T) {
	check := func(seed int64) bool {
		for _, k := range []int{2, 3, 4} {
			g := graphgen.BTC(150, 5, seed)
			e := runRef(t, NewKCoreJob("kcore", "", "", k), g)
			want := kCoreOracle(g, k)
			for id, v := range e.Vertices() {
				if kCoreMember(v) != want[id] {
					t.Fatalf("seed %d k=%d: vertex %d in-core=%v, oracle %v",
						seed, k, id, kCoreMember(v), want[id])
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestVIDListConcatCombiner(t *testing.T) {
	a := pregel.VIDList{1, 2}
	b := pregel.VIDList{3}
	got := VIDListConcatCombiner().Combine(&a, &b)
	l := *got.(*pregel.VIDList)
	if len(l) != 3 || l[0] != 1 || l[2] != 3 {
		t.Fatalf("combined: %v", l)
	}
}

package algorithms

import (
	"fmt"
	"strconv"

	"pregelix/pregel"
)

// KCoreKKey configures the core order k (default 3).
const KCoreKKey = "kcore.k"

// kCore computes k-core membership by distributed peeling on an
// undirected graph (edges present in both directions). Each vertex's
// value is the VIDList of neighbors it knows to have been peeled; a
// vertex records ITS OWN id in the list as the tombstone marking itself
// peeled. A vertex whose live degree — edges to neighbors not yet known
// peeled — drops below k peels itself and announces its id to all
// neighbors, cascading until the remaining subgraph is the k-core.
//
// Peeling is monotone under edge removal (deleting edges can only
// shrink the core), so a sealed fixed point can be refreshed
// incrementally: after edge removals, re-running only the mutated
// endpoints re-peels exactly the vertices the removals evict, and the
// surviving membership is identical to a from-scratch run. Edge
// additions can only ever grow the core, which peeling cannot undo, so
// additions need a from-scratch run.
type kCore struct{}

func (kCore) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	k := int64(3)
	if s := ctx.Config(KCoreKKey); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("algorithms: bad %s: %w", KCoreKKey, err)
		}
		k = n
	}
	list := v.Value.(*pregel.VIDList)
	peeled := make(map[uint64]bool, len(*list))
	for _, id := range *list {
		peeled[id] = true
	}
	if peeled[uint64(v.ID)] {
		// Already peeled; absorb late announcements and stay down.
		v.VoteToHalt()
		return nil
	}
	for _, m := range msgs {
		for _, id := range *m.(*pregel.VIDList) {
			if !peeled[id] {
				peeled[id] = true
				*list = append(*list, id)
			}
		}
	}
	live := int64(0)
	for _, e := range v.Edges {
		if !peeled[uint64(e.Dest)] && e.Dest != v.ID {
			live++
		}
	}
	if live < k {
		*list = append(*list, uint64(v.ID))
		out := pregel.VIDList{uint64(v.ID)}
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &out)
		}
	}
	v.VoteToHalt()
	return nil
}

// VIDListConcatCombiner concatenates VIDList announcements addressed to
// one vertex; receivers deduplicate, so ordering does not matter.
func VIDListConcatCombiner() pregel.Combiner {
	return pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value {
		la := a.(*pregel.VIDList)
		*la = append(*la, *b.(*pregel.VIDList)...)
		return a
	})
}

// NewKCoreJob builds a k-core peeling job. Peeling is message-sparse
// after the first wave, the left-outer-join territory of Section 5.3.2.
func NewKCoreJob(name, input, output string, k int) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: kCore{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewVIDList,
			NewMessage:     pregel.NewVIDList,
		},
		Combiner:   VIDListConcatCombiner(),
		Join:       pregel.LeftOuterJoin,
		GroupBy:    pregel.HashSortGroupBy,
		AutoPlan:   true,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			KCoreKKey: strconv.Itoa(k),
		},
	}
}

package algorithms

import (
	"sort"

	"pregelix/pregel"
)

// triangleCount counts triangles in an undirected graph (edges present
// in both directions). Superstep 1: each vertex sends its higher-id
// neighbor list to each higher-id neighbor. Superstep 2: each vertex
// intersects received lists with its own adjacency; every hit is a
// triangle counted exactly once (at its middle-id vertex's successor).
// The global triangle count is produced via the Aggregator.
type triangleCount struct{}

func (triangleCount) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	val := v.Value.(*pregel.Int64)
	switch ctx.Superstep() {
	case 1:
		*val = 0
		var higher pregel.VIDList
		for _, e := range v.Edges {
			if uint64(e.Dest) > uint64(v.ID) {
				higher = append(higher, uint64(e.Dest))
			}
		}
		sort.Slice(higher, func(i, j int) bool { return higher[i] < higher[j] })
		for _, dest := range higher {
			ctx.SendMessage(pregel.VertexID(dest), &higher)
		}
		v.VoteToHalt()
	case 2:
		neighbors := make(map[uint64]bool, len(v.Edges))
		for _, e := range v.Edges {
			neighbors[uint64(e.Dest)] = true
		}
		var count int64
		for _, m := range msgs {
			for _, cand := range *m.(*pregel.VIDList) {
				// Count each triangle (a<b<c) exactly once: at b, for
				// candidate c from a's gossip.
				if cand > uint64(v.ID) && neighbors[cand] {
					count++
				}
			}
		}
		*val = pregel.Int64(count)
		c := pregel.Int64(count)
		ctx.Aggregate(&c)
		v.VoteToHalt()
	}
	return nil
}

// SumInt64Aggregator sums Int64 contributions into the global state.
type SumInt64Aggregator struct{}

// Zero implements pregel.Aggregator.
func (SumInt64Aggregator) Zero() pregel.Value { return pregel.NewInt64() }

// Merge implements pregel.Aggregator.
func (SumInt64Aggregator) Merge(a, b pregel.Value) pregel.Value {
	*a.(*pregel.Int64) += *b.(*pregel.Int64)
	return a
}

// NewTriangleCountJob builds a triangle counting job; the final global
// aggregate (JobStats.FinalState.Aggregate, decodable as Int64) is the
// total triangle count.
func NewTriangleCountJob(name, input, output string) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: triangleCount{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewInt64,
			NewMessage:     pregel.NewVIDList,
		},
		Aggregator: SumInt64Aggregator{},
		Join:       pregel.FullOuterJoin,
		GroupBy:    pregel.SortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
	}
}

// maximalCliques finds, per vertex, the size of the largest clique that
// contains the vertex within its ego network, a building block for
// maximal clique enumeration. Superstep 1 gossips adjacency to
// neighbors; superstep 2 runs a bounded Bron-Kerbosch on the ego
// network. The global aggregate reports the maximum clique size found.
type maximalCliques struct{}

func (maximalCliques) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	val := v.Value.(*pregel.Int64)
	switch ctx.Superstep() {
	case 1:
		*val = 1
		var adj pregel.VIDList
		adj = append(adj, uint64(v.ID))
		for _, e := range v.Edges {
			adj = append(adj, uint64(e.Dest))
		}
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &adj)
		}
		v.VoteToHalt()
	case 2:
		// Ego network: neighbors of v plus edges among them as gossiped.
		adjacency := map[uint64]map[uint64]bool{}
		mine := map[uint64]bool{}
		for _, e := range v.Edges {
			mine[uint64(e.Dest)] = true
		}
		for _, m := range msgs {
			list := *m.(*pregel.VIDList)
			if len(list) == 0 {
				continue
			}
			owner := list[0]
			if !mine[owner] {
				continue
			}
			set := map[uint64]bool{}
			for _, n := range list[1:] {
				if mine[n] || n == uint64(v.ID) {
					set[n] = true
				}
			}
			adjacency[owner] = set
		}
		best := 1 + maxCliqueSize(adjacency, mine)
		*val = pregel.Int64(best)
		b := pregel.Int64(best)
		ctx.Aggregate(&b)
		v.VoteToHalt()
	}
	return nil
}

// maxCliqueSize runs a small Bron-Kerbosch over the ego network (the
// clique found is extended by the ego vertex itself by the caller).
func maxCliqueSize(adj map[uint64]map[uint64]bool, candidates map[uint64]bool) int {
	var nodes []uint64
	for n := range candidates {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	best := 0
	var extend func(clique []uint64, cand []uint64)
	calls := 0
	extend = func(clique []uint64, cand []uint64) {
		calls++
		if calls > 200_000 { // bounded search keeps worst cases tame
			return
		}
		if len(clique) > best {
			best = len(clique)
		}
		for i, c := range cand {
			ok := true
			for _, m := range clique {
				if !(adj[m][c] || adj[c][m]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			extend(append(clique, c), cand[i+1:])
		}
	}
	extend(nil, nodes)
	return best
}

// MaxInt64Aggregator keeps the maximum Int64 contribution.
type MaxInt64Aggregator struct{}

// Zero implements pregel.Aggregator.
func (MaxInt64Aggregator) Zero() pregel.Value { return pregel.NewInt64() }

// Merge implements pregel.Aggregator.
func (MaxInt64Aggregator) Merge(a, b pregel.Value) pregel.Value {
	if *b.(*pregel.Int64) > *a.(*pregel.Int64) {
		return b
	}
	return a
}

// NewMaximalCliquesJob builds the maximal-clique-size job.
func NewMaximalCliquesJob(name, input, output string) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: maximalCliques{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewInt64,
			NewMessage:     pregel.NewVIDList,
		},
		Aggregator: MaxInt64Aggregator{},
		Join:       pregel.FullOuterJoin,
		GroupBy:    pregel.SortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
	}
}

package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"pregelix/internal/graphgen"
	"pregelix/internal/reference"
	"pregelix/pregel"
)

func runRef(t *testing.T, job *pregel.Job, g *graphgen.Graph) *reference.Engine {
	t.Helper()
	e := reference.NewFromGraph(job, g)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPageRankSumsToOne(t *testing.T) {
	// On a graph with no dangling vertices, PageRank mass is conserved:
	// the ranks sum to ~1.
	g := graphgen.BTC(400, 6, 1) // undirected => no dangling vertices
	e := runRef(t, NewPageRankJob("pr", "", "", 20), g)
	sum := 0.0
	for _, v := range e.Vertices() {
		sum += float64(*v.Value.(*pregel.Double))
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Fatalf("rank mass %f, want 1.0", sum)
	}
}

func TestPageRankFavorsHubs(t *testing.T) {
	// A star graph: all spokes point at the hub; the hub must rank top.
	adj := map[uint64][]uint64{1: nil}
	for i := uint64(2); i <= 50; i++ {
		adj[i] = []uint64{1}
	}
	e := runRef(t, NewPageRankJob("pr", "", "", 10), &graphgen.Graph{Adj: adj})
	hub := float64(*e.Vertices()[1].Value.(*pregel.Double))
	spoke := float64(*e.Vertices()[2].Value.(*pregel.Double))
	if hub <= spoke*10 {
		t.Fatalf("hub %f vs spoke %f", hub, spoke)
	}
}

// dijkstra is an independent oracle for SSSP.
func dijkstra(g *graphgen.Graph, source uint64) map[uint64]float64 {
	dist := map[uint64]float64{source: 0}
	visited := map[uint64]bool{}
	for {
		best, bd := uint64(0), math.Inf(1)
		for v, d := range dist {
			if !visited[v] && d < bd {
				best, bd = v, d
			}
		}
		if math.IsInf(bd, 1) {
			return dist
		}
		visited[best] = true
		for i, n := range g.Adj[best] {
			w := 1.0
			if g.Weights != nil {
				w = float64(g.Weights[best][i])
			}
			if nd, ok := dist[n]; !ok || bd+w < nd {
				dist[n] = bd + w
			}
		}
	}
}

func TestSSSPAgainstDijkstra(t *testing.T) {
	check := func(seed int64) bool {
		g := graphgen.BTC(120, 5, seed)
		e := runRef(t, NewSSSPJob("sssp", "", "", 1), g)
		want := dijkstra(g, 1)
		for id, v := range e.Vertices() {
			got := float64(*v.Value.(*pregel.Double))
			wd, reachable := want[id]
			if !reachable {
				if got != math.MaxFloat64 {
					t.Fatalf("seed %d: unreachable %d has distance %f", seed, id, got)
				}
				continue
			}
			// Float32 weights accumulate rounding; compare loosely.
			if math.Abs(got-wd) > 1e-4 {
				t.Fatalf("seed %d: dist(%d) = %f, dijkstra %f", seed, id, got, wd)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// unionFind is an independent oracle for connected components.
func ccOracle(g *graphgen.Graph) map[uint64]uint64 {
	parent := map[uint64]uint64{}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for id := range g.Adj {
		parent[id] = id
	}
	for id, edges := range g.Adj {
		for _, d := range edges {
			a, b := find(id), find(d)
			if a != b {
				parent[a] = b
			}
		}
	}
	// Label each component with its min vid.
	minOf := map[uint64]uint64{}
	for id := range g.Adj {
		r := find(id)
		if m, ok := minOf[r]; !ok || id < m {
			minOf[r] = id
		}
	}
	out := map[uint64]uint64{}
	for id := range g.Adj {
		out[id] = minOf[find(id)]
	}
	return out
}

func TestCCAgainstUnionFind(t *testing.T) {
	check := func(seed int64) bool {
		// Disconnected graph: several scaled copies.
		g := graphgen.ScaleUp(graphgen.BTC(60, 4, seed), 3)
		e := runRef(t, NewConnectedComponentsJob("cc", "", ""), g)
		want := ccOracle(g)
		for id, v := range e.Vertices() {
			if uint64(*v.Value.(*pregel.Int64)) != want[id] {
				t.Fatalf("seed %d: cc(%d) = %d, oracle %d",
					seed, id, *v.Value.(*pregel.Int64), want[id])
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// triangleOracle counts triangles by brute force.
func triangleOracle(g *graphgen.Graph) int64 {
	var n int64
	for a, edges := range g.Adj {
		set := map[uint64]bool{}
		for _, d := range edges {
			set[d] = true
		}
		for _, b := range edges {
			if b <= a {
				continue
			}
			for _, c := range g.Adj[b] {
				if c > b && set[c] {
					n++
				}
			}
		}
	}
	return n
}

func TestTrianglesAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		g := graphgen.BTC(80, 6, seed)
		e := runRef(t, NewTriangleCountJob("tri", "", ""), g)
		var got pregel.Int64
		if agg := e.Aggregate(); agg != nil {
			if err := got.Unmarshal(agg); err != nil {
				t.Fatal(err)
			}
		}
		if int64(got) != triangleOracle(g) {
			t.Fatalf("seed %d: %d triangles, oracle %d", seed, got, triangleOracle(g))
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTreeParentsAreValid(t *testing.T) {
	g := graphgen.BTC(150, 5, 4)
	e := runRef(t, NewBFSTreeJob("bfs", "", "", 1), g)
	// Every parent pointer must be a real in-neighbor, and following
	// parents must reach the source.
	for id, v := range e.Vertices() {
		p := int64(*v.Value.(*pregel.Int64))
		if p == -1 {
			continue
		}
		if id == 1 {
			if p != 1 {
				t.Fatalf("source parent %d", p)
			}
			continue
		}
		found := false
		for _, d := range g.Adj[uint64(p)] {
			if d == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent(%d)=%d is not an in-neighbor", id, p)
		}
	}
	// Walk a leaf to the root.
	cur := uint64(0)
	for id, v := range e.Vertices() {
		if int64(*v.Value.(*pregel.Int64)) != -1 && id != 1 {
			cur = id
			break
		}
	}
	for hops := 0; cur != 1; hops++ {
		if hops > 200 {
			t.Fatal("parent chain does not reach the source")
		}
		cur = uint64(*e.Vertices()[cur].Value.(*pregel.Int64))
	}
}

func TestPathMergePreservesSequence(t *testing.T) {
	// A pure chain 1->2->...->n merges down; the surviving vertices'
	// concatenated values must preserve total length n (each vertex
	// starts with an empty sequence, so we track vertex count instead:
	// after merging, edges+vertices must describe the same path).
	g := graphgen.Chain(40, 0, 1)
	e := runRef(t, NewPathMergeJob("pm", "", "", 15), g)
	vs := e.Vertices()
	if len(vs) >= 40 {
		t.Fatalf("no merging happened: %d vertices", len(vs))
	}
	// The remaining graph must still be a set of disjoint simple paths
	// (every vertex has out-degree <= 1).
	for id, v := range vs {
		if len(v.Edges) > 1 {
			t.Fatalf("vertex %d has %d out-edges after merging", id, len(v.Edges))
		}
	}
}

func TestMinCombiners(t *testing.T) {
	a, b := pregel.Double(3), pregel.Double(1)
	if got := MinDoubleCombiner().Combine(&a, &b); *got.(*pregel.Double) != 1 {
		t.Fatal("min double combiner")
	}
	x, y := pregel.Int64(5), pregel.Int64(9)
	if got := MinInt64Combiner().Combine(&x, &y); *got.(*pregel.Int64) != 5 {
		t.Fatal("min int64 combiner")
	}
	s1, s2 := pregel.Double(1), pregel.Double(2)
	if got := SumCombiner().Combine(&s1, &s2); *got.(*pregel.Double) != 3 {
		t.Fatal("sum combiner")
	}
}

func TestAggregators(t *testing.T) {
	sum := SumInt64Aggregator{}
	a := sum.Zero()
	b := pregel.Int64(4)
	a = sum.Merge(a, &b)
	a = sum.Merge(a, &b)
	if *a.(*pregel.Int64) != 8 {
		t.Fatal("sum aggregator")
	}
	mx := MaxInt64Aggregator{}
	m := mx.Zero()
	big := pregel.Int64(9)
	small := pregel.Int64(3)
	m = mx.Merge(m, &big)
	m = mx.Merge(m, &small)
	if *m.(*pregel.Int64) != 9 {
		t.Fatal("max aggregator")
	}
}

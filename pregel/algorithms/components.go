package algorithms

import (
	"strconv"

	"pregelix/pregel"
)

// connectedComponents propagates the minimum vertex id through the graph
// (label propagation); at convergence every vertex's value is its
// component's smallest vid. The input is treated as undirected, i.e.
// edges are expected in both directions (the BTC datasets of Section 7
// are undirected).
type connectedComponents struct{}

func (connectedComponents) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	val := v.Value.(*pregel.Int64)
	if ctx.Superstep() == 1 {
		*val = pregel.Int64(v.ID)
		for _, e := range v.Edges {
			if e.Dest < v.ID {
				m := pregel.Int64(e.Dest)
				*val = m
			}
		}
		out := *val
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &out)
		}
		v.VoteToHalt()
		return nil
	}
	changed := false
	for _, m := range msgs {
		if c := *m.(*pregel.Int64); c < *val {
			*val = c
			changed = true
		}
	}
	if changed {
		out := *val
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &out)
		}
	}
	v.VoteToHalt()
	return nil
}

// MinInt64Combiner keeps the minimum Int64 message.
func MinInt64Combiner() pregel.Combiner {
	return pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value {
		if *b.(*pregel.Int64) < *a.(*pregel.Int64) {
			return b
		}
		return a
	})
}

// NewConnectedComponentsJob builds a CC job. CC starts message-intensive
// and sparsifies near convergence, so the default full-outer-join plan
// and the left-outer-join plan perform similarly (Figure 14c).
func NewConnectedComponentsJob(name, input, output string) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: connectedComponents{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewInt64,
			NewMessage:     pregel.NewInt64,
		},
		Combiner:   MinInt64Combiner(),
		Join:       pregel.FullOuterJoin,
		GroupBy:    pregel.SortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
	}
}

// reachability marks every vertex reachable from the source with true.
type reachability struct{}

func (reachability) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	sourceID := uint64(1)
	if s := ctx.Config(SourceIDKey); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			sourceID = n
		}
	}
	val := v.Value.(*pregel.Bool)
	reached := bool(*val)
	if ctx.Superstep() == 1 {
		reached = uint64(v.ID) == sourceID
	} else if len(msgs) > 0 {
		reached = true
	}
	if reached && !bool(*val) {
		*val = pregel.Bool(true)
		t := pregel.Bool(true)
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &t)
		}
	}
	v.VoteToHalt()
	return nil
}

// FirstCombiner keeps an arbitrary single message; used when any one
// message carries all the information (reachability, BFS parent).
func FirstCombiner() pregel.Combiner {
	return pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value { return a })
}

// NewReachabilityJob builds a reachability query job from the given
// source vertex (message-sparse: left outer join).
func NewReachabilityJob(name, input, output string, sourceID uint64) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: reachability{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewBool,
			NewMessage:     pregel.NewBool,
		},
		Combiner:   FirstCombiner(),
		Join:       pregel.LeftOuterJoin,
		GroupBy:    pregel.HashSortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			SourceIDKey: strconv.FormatUint(sourceID, 10),
		},
	}
}

// bfsTree computes a BFS spanning tree: each vertex's value becomes its
// parent's id (the source points at itself; unreached vertices keep -1).
// This is one of the graph-connectivity building blocks of the Hong
// Kong research group's use case (Section 6).
type bfsTree struct{}

func (bfsTree) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	sourceID := uint64(1)
	if s := ctx.Config(SourceIDKey); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			sourceID = n
		}
	}
	val := v.Value.(*pregel.Int64)
	if ctx.Superstep() == 1 {
		*val = -1
		if uint64(v.ID) == sourceID {
			*val = pregel.Int64(v.ID)
			me := pregel.Int64(v.ID)
			for _, e := range v.Edges {
				ctx.SendMessage(e.Dest, &me)
			}
		}
		v.VoteToHalt()
		return nil
	}
	if *val == -1 && len(msgs) > 0 {
		*val = *msgs[0].(*pregel.Int64) // first parent wins
		me := pregel.Int64(v.ID)
		for _, e := range v.Edges {
			ctx.SendMessage(e.Dest, &me)
		}
	}
	v.VoteToHalt()
	return nil
}

// NewBFSTreeJob builds a BFS spanning tree job.
func NewBFSTreeJob(name, input, output string, sourceID uint64) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: bfsTree{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewInt64,
			NewMessage:     pregel.NewInt64,
		},
		Combiner:   FirstCombiner(),
		Join:       pregel.LeftOuterJoin,
		GroupBy:    pregel.HashSortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			SourceIDKey: strconv.FormatUint(sourceID, 10),
		},
	}
}

// Package algorithms is the Pregelix built-in graph algorithm library
// (Section 6 of the paper): PageRank, single source shortest paths,
// connected components, reachability, triangle counting, maximal
// cliques, random-walk graph sampling, BFS spanning tree, and the
// De-Bruijn-style path merging of the Genomix use case.
//
// Each constructor returns a configured pregel.Job with the plan hints
// the paper recommends for that workload; callers may override the
// hints to explore the other physical plans.
package algorithms

import (
	"fmt"
	"strconv"

	"pregelix/pregel"
)

// PageRankIterationsKey configures the iteration count (default 10).
const PageRankIterationsKey = "pagerank.iterations"

// pageRank is the classic message-intensive ranking computation
// (Section 7's Webmap workload). Every vertex is live in every
// superstep, which is why the paper's default full-outer-join +
// B-tree plan fits it best.
type pageRank struct{}

func (pageRank) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	iterations := int64(10)
	if s := ctx.Config(PageRankIterationsKey); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("algorithms: bad %s: %w", PageRankIterationsKey, err)
		}
		iterations = n
	}
	val := v.Value.(*pregel.Double)
	n := float64(ctx.NumVertices())
	if ctx.Superstep() == 1 {
		*val = pregel.Double(1.0 / n)
	} else {
		var sum float64
		for _, m := range msgs {
			sum += float64(*m.(*pregel.Double))
		}
		*val = pregel.Double(0.15/n + 0.85*sum)
	}
	if ctx.Superstep() < iterations {
		if len(v.Edges) > 0 {
			share := pregel.Double(float64(*val) / float64(len(v.Edges)))
			for _, e := range v.Edges {
				ctx.SendMessage(e.Dest, &share)
			}
		}
	} else {
		v.VoteToHalt()
	}
	return nil
}

// SumCombiner adds Double messages, the PageRank combiner.
func SumCombiner() pregel.Combiner {
	return pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value {
		*a.(*pregel.Double) += *b.(*pregel.Double)
		return a
	})
}

// NewPageRankJob builds a PageRank job with the paper's default plan
// (index full outer join, sort group-by, unmerged connector, B-tree).
func NewPageRankJob(name, input, output string, iterations int) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: pageRank{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewDouble,
			NewMessage:     pregel.NewDouble,
		},
		Combiner:   SumCombiner(),
		Join:       pregel.FullOuterJoin,
		GroupBy:    pregel.SortGroupBy,
		Connector:  pregel.UnmergeConnector,
		Storage:    pregel.BTreeStorage,
		InputPath:  input,
		OutputPath: output,
		Config: map[string]string{
			PageRankIterationsKey: strconv.Itoa(iterations),
		},
	}
}

package algorithms

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"pregelix/pregel"
)

// Path merging is the core graph-cleaning step of the Genomix genome
// assembler built on Pregelix (Section 6): single paths in a De Bruijn
// graph are iteratively merged into their predecessor vertices until
// every mergeable chain is collapsed. It exercises Pregelix's vertex
// addition/removal support heavily, which is why the paper recommends
// LSM vertex storage for it.
//
// The algorithm proceeds in rounds of three supersteps:
//
//	phase 0: every vertex with out-degree 1 whose round-salted coin is
//	         HEAD pings its unique successor.
//	phase 1: a vertex whose coin is TAIL and that received exactly one
//	         ping replies with its content (sequence + out-edges) and
//	         removes itself (RemoveVertex).
//	phase 2: the head appends the tail's sequence, adopts its edges.
//
// The head/tail coin is re-salted per round, so any adjacent pair
// eventually draws (HEAD, TAIL) and merges; the coin also guarantees no
// vertex is simultaneously head and tail in one round, which would lose
// data. Rounds are bounded by MaxSupersteps (or run one round per
// pipelined job, as the genome example does).

// PathMergeRoundsKey configures the number of 3-superstep rounds for a
// standalone path-merge job.
const PathMergeRoundsKey = "pathmerge.rounds"

// PathMergeSeedKey salts the head/tail coin.
const PathMergeSeedKey = "pathmerge.seed"

type pathMerge struct{}

// Message encoding: kind byte then payload.
const (
	pmPing    = 1 // payload: u64 sender id
	pmContent = 2 // payload: u32 seqLen, seq, u32 edgeCount, u64 dests...
)

func pingMsg(from pregel.VertexID) *pregel.Bytes {
	b := make(pregel.Bytes, 9)
	b[0] = pmPing
	binary.LittleEndian.PutUint64(b[1:], uint64(from))
	return &b
}

func contentMsg(seq []byte, edges []pregel.Edge) *pregel.Bytes {
	b := make(pregel.Bytes, 0, 9+len(seq)+8*len(edges))
	b = append(b, pmContent)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(seq)))
	b = append(b, tmp[:4]...)
	b = append(b, seq...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(edges)))
	b = append(b, tmp[:4]...)
	for _, e := range edges {
		binary.LittleEndian.PutUint64(tmp[:], uint64(e.Dest))
		b = append(b, tmp[:]...)
	}
	return &b
}

func (pathMerge) Compute(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
	seed := uint64(7)
	if s := ctx.Config(PathMergeSeedKey); s != "" {
		seed, _ = strconv.ParseUint(s, 10, 64)
	}
	phase := (ctx.Superstep() - 1) % 3
	round := uint64((ctx.Superstep() - 1) / 3)
	headCoin := func(id pregel.VertexID) bool {
		return mix(seed^round, uint64(id))&1 == 0
	}
	val := v.Value.(*pregel.Bytes)

	switch phase {
	case 0:
		if len(v.Edges) == 1 && headCoin(v.ID) {
			ctx.SendMessage(v.Edges[0].Dest, pingMsg(v.ID))
		}
	case 1:
		var pings []pregel.VertexID
		for _, m := range msgs {
			b := *m.(*pregel.Bytes)
			if len(b) == 9 && b[0] == pmPing {
				pings = append(pings, pregel.VertexID(binary.LittleEndian.Uint64(b[1:])))
			}
		}
		if len(pings) == 1 && !headCoin(v.ID) {
			ctx.SendMessage(pings[0], contentMsg(*val, v.Edges))
			ctx.RemoveVertex(v.ID)
		}
	case 2:
		for _, m := range msgs {
			b := *m.(*pregel.Bytes)
			if len(b) == 0 || b[0] != pmContent {
				continue
			}
			off := 1
			seqLen := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if off+seqLen > len(b) {
				return fmt.Errorf("algorithms: corrupt path-merge content")
			}
			*val = append(*val, b[off:off+seqLen]...)
			off += seqLen
			ec := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			v.Edges = v.Edges[:0]
			for i := 0; i < ec; i++ {
				dest := pregel.VertexID(binary.LittleEndian.Uint64(b[off:]))
				off += 8
				v.Edges = append(v.Edges, pregel.Edge{Dest: dest})
			}
		}
	}

	// Stay awake until the round budget is exhausted; the job's
	// MaxSupersteps (or the per-round pipeline) bounds execution.
	rounds := int64(10)
	if s := ctx.Config(PathMergeRoundsKey); s != "" {
		rounds, _ = strconv.ParseInt(s, 10, 64)
	}
	if ctx.Superstep() >= rounds*3 {
		v.VoteToHalt()
	}
	return nil
}

// NewPathMergeJob builds a standalone path-merging job running the given
// number of 3-superstep rounds, with the mutation-friendly LSM storage
// the paper recommends for this workload.
func NewPathMergeJob(name, input, output string, rounds int) *pregel.Job {
	return &pregel.Job{
		Name:    name,
		Program: pathMerge{},
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewBytes,
			NewMessage:     pregel.NewBytes,
		},
		Join:          pregel.FullOuterJoin,
		GroupBy:       pregel.SortGroupBy,
		Connector:     pregel.UnmergeConnector,
		Storage:       pregel.LSMStorage,
		InputPath:     input,
		OutputPath:    output,
		MaxSupersteps: rounds * 3,
		Config: map[string]string{
			PathMergeRoundsKey: strconv.Itoa(rounds),
		},
	}
}

// NewPathMergeRoundJob builds a single-round (3 supersteps) path-merge
// job for use in a pipelined job array (Section 5.6), one job per
// cleaning round as Genomix chains its algorithms.
func NewPathMergeRoundJob(name, input, output string, round int) *pregel.Job {
	j := NewPathMergeJob(name, input, output, 1)
	j.MaxSupersteps = 3
	j.Config[PathMergeSeedKey] = strconv.Itoa(7 + round) // re-salt per round
	return j
}

package pregel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDoubleRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		d := Double(x)
		var got Double
		if err := got.Unmarshal(d.Marshal(nil)); err != nil {
			return false
		}
		return got == d || (math.IsNaN(x) && math.IsNaN(float64(got)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(x int64) bool {
		v := Int64(x)
		var got Int64
		if err := got.Unmarshal(v.Marshal(nil)); err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatBoolBytesRoundTrip(t *testing.T) {
	fl := Float(3.25)
	var gf Float
	if err := gf.Unmarshal(fl.Marshal(nil)); err != nil || gf != fl {
		t.Fatalf("float: %v %v", gf, err)
	}
	bo := Bool(true)
	var gb Bool
	if err := gb.Unmarshal(bo.Marshal(nil)); err != nil || !bool(gb) {
		t.Fatalf("bool: %v %v", gb, err)
	}
	by := Bytes("hello")
	var gby Bytes
	if err := gby.Unmarshal(by.Marshal(nil)); err != nil || string(gby) != "hello" {
		t.Fatalf("bytes: %q %v", gby, err)
	}
}

func TestVIDListRoundTrip(t *testing.T) {
	f := func(ids []uint64) bool {
		v := VIDList(ids)
		var got VIDList
		if err := got.Unmarshal(v.Marshal(nil)); err != nil {
			return false
		}
		if len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueUnmarshalErrors(t *testing.T) {
	var d Double
	if err := d.Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("short double should error")
	}
	var v Int64
	if err := v.Unmarshal(nil); err == nil {
		t.Fatal("empty int64 should error")
	}
	var l VIDList
	if err := l.Unmarshal([]byte{9, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("truncated VIDList should error")
	}
}

func testCodec() *Codec {
	return &Codec{
		NewVertexValue: NewDouble,
		NewEdgeValue:   NewFloat,
		NewMessage:     NewDouble,
	}
}

func TestVertexCodecRoundTrip(t *testing.T) {
	c := testCodec()
	val := Double(2.5)
	w1, w2 := Float(1.5), Float(0.25)
	v := &Vertex{
		ID:     42,
		Halted: true,
		Value:  &val,
		Edges: []Edge{
			{Dest: 7, Value: &w1},
			{Dest: 9, Value: &w2},
		},
	}
	got, err := c.DecodeVertex(42, c.EncodeVertex(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || !got.Halted {
		t.Fatalf("header: %+v", got)
	}
	if *got.Value.(*Double) != 2.5 {
		t.Fatalf("value: %v", got.Value)
	}
	if len(got.Edges) != 2 || got.Edges[0].Dest != 7 || *got.Edges[1].Value.(*Float) != 0.25 {
		t.Fatalf("edges: %+v", got.Edges)
	}
}

func TestVertexCodecQuick(t *testing.T) {
	c := testCodec()
	f := func(id uint64, halted bool, value float64, dests []uint64) bool {
		val := Double(value)
		v := &Vertex{ID: VertexID(id), Halted: halted, Value: &val}
		for _, d := range dests {
			w := Float(float32(d % 100))
			v.AddEdge(VertexID(d), &w)
		}
		got, err := c.DecodeVertex(VertexID(id), c.EncodeVertex(v))
		if err != nil {
			return false
		}
		if got.Halted != halted || len(got.Edges) != len(dests) {
			return false
		}
		gv := float64(*got.Value.(*Double))
		if gv != value && !(math.IsNaN(gv) && math.IsNaN(value)) {
			return false
		}
		for i, d := range dests {
			if uint64(got.Edges[i].Dest) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVertexCorruptInputs(t *testing.T) {
	c := testCodec()
	cases := [][]byte{
		nil,
		{1},
		{0, 255, 255, 255, 255},           // absurd value length
		{0, 0, 0, 0, 0, 9, 0, 0, 0, 1, 2}, // edge count overruns
		{0, 4, 0, 0, 0, 1, 2},             // value overruns
	}
	for i, data := range cases {
		if _, err := c.DecodeVertex(1, data); err == nil {
			t.Fatalf("case %d: expected decode error", i)
		}
	}
}

func TestMsgListRoundTripAndAppend(t *testing.T) {
	c := testCodec()
	a, b := Double(1), Double(2)
	la := EncodeMsgList(&a)
	lb := EncodeMsgList(&b)
	merged := AppendMsgLists(la, lb)
	got, err := c.DecodeMsgList(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || *got[0].(*Double) != 1 || *got[1].(*Double) != 2 {
		t.Fatalf("merged: %v", got)
	}
	// Empty list.
	empty := EncodeMsgList()
	got, err = c.DecodeMsgList(empty)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	// nil payload decodes as no messages.
	got, err = c.DecodeMsgList(nil)
	if err != nil || got != nil {
		t.Fatalf("nil: %v %v", got, err)
	}
}

func TestVertexEdgeOps(t *testing.T) {
	v := &Vertex{ID: 1}
	v.AddEdge(2, nil)
	v.AddEdge(3, nil)
	v.AddEdge(2, nil)
	if !v.RemoveEdge(2) || len(v.Edges) != 1 || v.Edges[0].Dest != 3 {
		t.Fatalf("edges after remove: %+v", v.Edges)
	}
	if v.RemoveEdge(99) {
		t.Fatal("removing absent edge should report false")
	}
	v.VoteToHalt()
	if !v.Halted {
		t.Fatal("vote to halt")
	}
	v.Activate()
	if v.Halted {
		t.Fatal("activate")
	}
}

func TestParseVertexLine(t *testing.T) {
	v, err := ParseVertexLine("5\t7:1.5 9 11:0.25", true)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 5 || len(v.Edges) != 3 {
		t.Fatalf("%+v", v)
	}
	if *v.Edges[0].Value.(*Float) != 1.5 {
		t.Fatalf("weight: %v", v.Edges[0].Value)
	}
	if v.Edges[1].Value != nil {
		t.Fatal("unweighted edge should have nil value")
	}
	// Unweighted mode ignores weights.
	v, err = ParseVertexLine("5 7:1.5", false)
	if err != nil || v.Edges[0].Value != nil {
		t.Fatalf("%+v %v", v, err)
	}
	// Errors.
	for _, bad := range []string{"", "x 2", "1 y", "1 2:zz"} {
		if _, err := ParseVertexLine(bad, true); err == nil {
			t.Fatalf("line %q should fail", bad)
		}
	}
}

func TestFormatVertexLineRoundTrip(t *testing.T) {
	val := Double(0.5)
	w := Float(2)
	v := &Vertex{ID: 3, Value: &val, Edges: []Edge{{Dest: 8, Value: &w}, {Dest: 9}}}
	line := FormatVertexLine(v)
	if !strings.HasPrefix(line, "3\t0.5\t") {
		t.Fatalf("line: %q", line)
	}
	if !strings.Contains(line, "8:2") || !strings.Contains(line, "9") {
		t.Fatalf("line: %q", line)
	}
}

func TestValueString(t *testing.T) {
	d := Double(1.5)
	i := Int64(-3)
	bo := Bool(true)
	by := Bytes{0xab}
	l := VIDList{1, 2}
	cases := map[Value]string{
		&d: "1.5", &i: "-3", &bo: "true", &by: "ab", &l: "1,2", nil: "",
	}
	for v, want := range cases {
		if got := ValueString(v); got != want {
			t.Fatalf("ValueString(%v) = %q want %q", v, got, want)
		}
	}
}

func TestJobValidate(t *testing.T) {
	good := &Job{
		Name:    "j",
		Program: ProgramFunc(func(Context, *Vertex, []Value) error { return nil }),
		Codec:   Codec{NewVertexValue: NewDouble, NewMessage: NewDouble},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []*Job{
		{},
		{Name: "x"},
		{Name: "x", Program: good.Program},
		{Name: "x", Program: good.Program, Codec: Codec{NewVertexValue: NewDouble}},
	}
	for i, j := range bads {
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDefaultResolver(t *testing.T) {
	r := DefaultResolver{}
	existing := &Vertex{ID: 1}
	add1, add2 := &Vertex{ID: 1}, &Vertex{ID: 1}
	if got := r.Resolve(1, existing, nil, true); got != nil {
		t.Fatal("removal should delete")
	}
	if got := r.Resolve(1, existing, []*Vertex{add1, add2}, false); got != existing {
		t.Fatal("addition over a surviving vertex should merge into it")
	}
	if got := r.Resolve(1, existing, []*Vertex{add1}, true); got != add1 {
		t.Fatal("deletion then insertion should keep the insertion")
	}
	if got := r.Resolve(1, existing, nil, false); got != existing {
		t.Fatal("no mutation should keep existing")
	}
}

func TestHintStrings(t *testing.T) {
	pairs := map[string]string{
		FullOuterJoin.String():    "fullouter",
		LeftOuterJoin.String():    "leftouter",
		SortGroupBy.String():      "sort",
		HashSortGroupBy.String():  "hashsort",
		UnmergeConnector.String(): "unmerge",
		MergeConnector.String():   "merge",
		BTreeStorage.String():     "btree",
		LSMStorage.String():       "lsm",
	}
	for got, want := range pairs {
		if got != want {
			t.Fatalf("hint string %q want %q", got, want)
		}
	}
}

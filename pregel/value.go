// Package pregel defines the user-facing Pregel programming model of
// Pregelix: vertices, edges, the compute UDF and its context, message
// combiners, global aggregators, graph-mutation resolvers, and the job
// configuration (including the physical plan hints of Section 5.3).
//
// It mirrors the Java API of the paper's Figure 9: a user implements
// Program (and optionally Combiner/Aggregator/Resolver), configures a Job
// with codec factories and plan hints, and submits it to the Pregelix
// runtime.
package pregel

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value is the Writable-style codec contract for vertex values, edge
// values, and messages: user-defined types serialize themselves so the
// runtime can treat them as opaque tuple fields.
type Value interface {
	// Marshal appends the encoded value to dst and returns the result.
	Marshal(dst []byte) []byte
	// Unmarshal decodes the value from data.
	Unmarshal(data []byte) error
}

// Double is a float64 Value (the DoubleWritable of Figure 9).
type Double float64

// Marshal implements Value.
func (d Double) Marshal(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(d)))
	return append(dst, b[:]...)
}

// Unmarshal implements Value.
func (d *Double) Unmarshal(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("pregel: Double expects 8 bytes, got %d", len(data))
	}
	*d = Double(math.Float64frombits(binary.LittleEndian.Uint64(data)))
	return nil
}

// NewDouble is a codec factory for Double.
func NewDouble() Value { d := Double(0); return &d }

// Float is a float32 Value (the FloatWritable edge weight of Figure 9).
type Float float32

// Marshal implements Value.
func (f Float) Marshal(dst []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(f)))
	return append(dst, b[:]...)
}

// Unmarshal implements Value.
func (f *Float) Unmarshal(data []byte) error {
	if len(data) != 4 {
		return fmt.Errorf("pregel: Float expects 4 bytes, got %d", len(data))
	}
	*f = Float(math.Float32frombits(binary.LittleEndian.Uint32(data)))
	return nil
}

// NewFloat is a codec factory for Float.
func NewFloat() Value { f := Float(0); return &f }

// Int64 is an int64 Value (VLongWritable).
type Int64 int64

// Marshal implements Value.
func (v Int64) Marshal(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(dst, b[:]...)
}

// Unmarshal implements Value.
func (v *Int64) Unmarshal(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("pregel: Int64 expects 8 bytes, got %d", len(data))
	}
	*v = Int64(binary.LittleEndian.Uint64(data))
	return nil
}

// NewInt64 is a codec factory for Int64.
func NewInt64() Value { v := Int64(0); return &v }

// Bool is a boolean Value.
type Bool bool

// Marshal implements Value.
func (v Bool) Marshal(dst []byte) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Unmarshal implements Value.
func (v *Bool) Unmarshal(data []byte) error {
	if len(data) != 1 {
		return fmt.Errorf("pregel: Bool expects 1 byte, got %d", len(data))
	}
	*v = data[0] != 0
	return nil
}

// NewBool is a codec factory for Bool.
func NewBool() Value { v := Bool(false); return &v }

// Bytes is a raw byte-string Value for user-defined encodings (e.g. the
// k-mer payloads of the genome-assembly use case).
type Bytes []byte

// Marshal implements Value.
func (v Bytes) Marshal(dst []byte) []byte { return append(dst, v...) }

// Unmarshal implements Value.
func (v *Bytes) Unmarshal(data []byte) error {
	*v = append((*v)[:0], data...)
	return nil
}

// NewBytes is a codec factory for Bytes.
func NewBytes() Value { v := Bytes(nil); return &v }

// VIDList is a Value holding a list of vertex ids, used by algorithms
// that gossip neighbor sets (triangle counting, maximal cliques).
type VIDList []uint64

// Marshal implements Value.
func (v VIDList) Marshal(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(v)))
	dst = append(dst, b[:]...)
	for _, id := range v {
		binary.LittleEndian.PutUint64(b[:], id)
		dst = append(dst, b[:]...)
	}
	return dst
}

// Unmarshal implements Value.
func (v *VIDList) Unmarshal(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("pregel: VIDList too short")
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+8*n {
		return fmt.Errorf("pregel: VIDList length mismatch")
	}
	out := make(VIDList, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	*v = out
	return nil
}

// NewVIDList is a codec factory for VIDList.
func NewVIDList() Value { v := VIDList(nil); return &v }

// MarshalValue encodes v, returning nil for a nil Value.
func MarshalValue(v Value) []byte {
	if v == nil {
		return nil
	}
	return v.Marshal(nil)
}

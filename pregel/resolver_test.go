package pregel

import "testing"

// TestDefaultResolverTable pins the default mutation-conflict
// semantics the delta-ingest subsystem relies on: deletions before
// insertions, last addition wins, duplicate addVertex merges into a
// surviving vertex (value adopted, edges kept, vertex reactivated),
// remove-then-add starts fresh.
func TestDefaultResolverTable(t *testing.T) {
	mkExisting := func() *Vertex {
		v := &Vertex{ID: 1, Halted: true}
		val := Int64(10)
		v.Value = &val
		v.AddEdge(2, nil)
		v.AddEdge(3, nil)
		return v
	}
	mkAdd := func(val int64) *Vertex {
		v := &Vertex{ID: 1}
		d := Int64(val)
		v.Value = &d
		return v
	}

	cases := []struct {
		name      string
		existing  bool
		additions []int64
		removed   bool
		// expectations
		wantNil   bool
		wantValue int64
		wantEdges int
		wantLive  bool
	}{
		{name: "noMutation", existing: true, wantValue: 10, wantEdges: 2, wantLive: false},
		{name: "plainRemoval", existing: true, removed: true, wantNil: true},
		{name: "removalOfAbsent", removed: true, wantNil: true},
		{name: "addToAbsent", additions: []int64{7}, wantValue: 7, wantEdges: 0, wantLive: true},
		{name: "lastAdditionWins", additions: []int64{7, 8, 9}, wantValue: 9, wantEdges: 0, wantLive: true},
		// Duplicate addVertex of a live record: the addition's value is
		// adopted but the existing edge list survives — a duplicate
		// insert must not silently disconnect the vertex.
		{name: "duplicateAddMerges", existing: true, additions: []int64{42}, wantValue: 42, wantEdges: 2, wantLive: true},
		{name: "duplicateAddLastWins", existing: true, additions: []int64{41, 42}, wantValue: 42, wantEdges: 2, wantLive: true},
		// Remove-then-add resets the vertex: the insertion starts fresh
		// with no inherited edges.
		{name: "removeThenAdd", existing: true, additions: []int64{5}, removed: true, wantValue: 5, wantEdges: 0, wantLive: true},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var existing *Vertex
			if c.existing {
				existing = mkExisting()
			}
			var adds []*Vertex
			for _, val := range c.additions {
				adds = append(adds, mkAdd(val))
			}
			got := DefaultResolver{}.Resolve(1, existing, adds, c.removed)
			if c.wantNil {
				if got != nil {
					t.Fatalf("got %+v, want deletion", got)
				}
				return
			}
			if got == nil {
				t.Fatal("got deletion, want a vertex")
			}
			if v := int64(*got.Value.(*Int64)); v != c.wantValue {
				t.Fatalf("value %d, want %d", v, c.wantValue)
			}
			if len(got.Edges) != c.wantEdges {
				t.Fatalf("edges %d, want %d", len(got.Edges), c.wantEdges)
			}
			if live := !got.Halted; live != c.wantLive {
				t.Fatalf("live %v, want %v", live, c.wantLive)
			}
		})
	}
}

package pregel_test

import (
	"fmt"
	"sort"

	"pregelix/internal/graphgen"
	"pregelix/internal/reference"
	"pregelix/pregel"
)

// Example shows a Combiner and an Aggregator working together in one
// job: max-label propagation (every vertex converges to the largest
// vertex ID in its connected component). The Combiner collapses the
// messages addressed to one vertex down to their maximum before
// delivery — the same pre-aggregation the distributed runtime performs
// on the sender and receiver side of the shuffle — and the Aggregator
// counts label changes per superstep, a global convergence measure each
// vertex can read back with Context.GlobalAggregate the following
// superstep.
func Example() {
	// Two components: a path 1–2–3–4–5 and a pair 6–7.
	g := &graphgen.Graph{Adj: map[uint64][]uint64{
		1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3, 5}, 5: {4},
		6: {7}, 7: {6},
	}}

	job := &pregel.Job{
		Name: "max-label",
		Codec: pregel.Codec{
			NewVertexValue: pregel.NewInt64,
			NewMessage:     pregel.NewInt64,
		},
		// Messages to one vertex collapse to their max before delivery.
		Combiner: pregel.CombinerFunc(func(a, b pregel.Value) pregel.Value {
			if int64(*b.(*pregel.Int64)) > int64(*a.(*pregel.Int64)) {
				return b
			}
			return a
		}),
		// The global aggregate sums each superstep's label changes.
		Aggregator: sumAggregator{},
		Program: pregel.ProgramFunc(func(ctx pregel.Context, v *pregel.Vertex, msgs []pregel.Value) error {
			label := int64(*v.Value.(*pregel.Int64))
			changed := false
			if ctx.Superstep() == 1 {
				label, changed = int64(v.ID), true
			}
			for _, m := range msgs {
				if mv := int64(*m.(*pregel.Int64)); mv > label {
					label, changed = mv, true
				}
			}
			*v.Value.(*pregel.Int64) = pregel.Int64(label)
			if changed {
				out := pregel.Int64(label)
				for _, e := range v.Edges {
					ctx.SendMessage(e.Dest, &out)
				}
				one := pregel.Int64(1)
				ctx.Aggregate(&one)
			}
			v.VoteToHalt()
			return nil
		}),
	}

	// The reference interpreter runs the job with textbook BSP
	// semantics; core.Runtime executes the same Job on the dataflow
	// engine (see examples/quickstart).
	eng := reference.NewFromGraph(job, g)
	supersteps, err := eng.Run(0)
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Printf("converged after %d supersteps\n", supersteps)
	ids := make([]uint64, 0, len(eng.Vertices()))
	for id := range eng.Vertices() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Printf("vertex %d: component max %s\n", id, pregel.ValueString(eng.Vertices()[id].Value))
	}
	// Output:
	// converged after 6 supersteps
	// vertex 1: component max 5
	// vertex 2: component max 5
	// vertex 3: component max 5
	// vertex 4: component max 5
	// vertex 5: component max 5
	// vertex 6: component max 7
	// vertex 7: component max 7
}

// sumAggregator folds Int64 contributions by addition.
type sumAggregator struct{}

func (sumAggregator) Zero() pregel.Value { return pregel.NewInt64() }
func (sumAggregator) Merge(a, b pregel.Value) pregel.Value {
	*a.(*pregel.Int64) += *b.(*pregel.Int64)
	return a
}

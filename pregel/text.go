package pregel

import (
	"fmt"
	"strconv"
	"strings"
)

// Text graph format (the SimpleTextInputFormat/SimpleTextOutputFormat of
// Figure 9): one vertex per line,
//
//	vid <tab> dest[:weight] dest[:weight] ...
//
// Vertex values are not part of the input; programs initialize them in
// superstep 1 (as the paper's SSSP does). On output, the vertex value is
// appended as a second tab-separated column when a formatter is set.

// ParseVertexLine parses one adjacency line. newEdgeValue may be nil for
// unweighted graphs; weights present in the input are decoded as Float.
func ParseVertexLine(line string, withWeights bool) (*Vertex, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("pregel: empty vertex line")
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("pregel: bad vid %q: %w", fields[0], err)
	}
	v := &Vertex{ID: VertexID(id)}
	for _, f := range fields[1:] {
		var destStr, wStr string
		if i := strings.IndexByte(f, ':'); i >= 0 {
			destStr, wStr = f[:i], f[i+1:]
		} else {
			destStr = f
		}
		dest, err := strconv.ParseUint(destStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pregel: bad edge dest %q: %w", destStr, err)
		}
		var ev Value
		if withWeights && wStr != "" {
			w, err := strconv.ParseFloat(wStr, 32)
			if err != nil {
				return nil, fmt.Errorf("pregel: bad edge weight %q: %w", wStr, err)
			}
			fv := Float(w)
			ev = &fv
		}
		v.Edges = append(v.Edges, Edge{Dest: VertexID(dest), Value: ev})
	}
	return v, nil
}

// FormatVertexLine renders a vertex for result dumping:
// "vid<TAB>value<TAB>dest[:w] ...". The value column prints via
// ValueString.
func FormatVertexLine(v *Vertex) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\t%s\t", uint64(v.ID), ValueString(v.Value))
	for i, e := range v.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		if f, ok := e.Value.(*Float); ok && f != nil {
			fmt.Fprintf(&b, "%d:%g", uint64(e.Dest), float64(*f))
		} else {
			fmt.Fprintf(&b, "%d", uint64(e.Dest))
		}
	}
	return b.String()
}

// ValueString renders a Value for human-readable output.
func ValueString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case *Double:
		return strconv.FormatFloat(float64(*x), 'g', -1, 64)
	case *Float:
		return strconv.FormatFloat(float64(*x), 'g', -1, 32)
	case *Int64:
		return strconv.FormatInt(int64(*x), 10)
	case *Bool:
		return strconv.FormatBool(bool(*x))
	case *Bytes:
		return fmt.Sprintf("%x", []byte(*x))
	case *VIDList:
		parts := make([]string, len(*x))
		for i, id := range *x {
			parts[i] = strconv.FormatUint(id, 10)
		}
		return strings.Join(parts, ",")
	default:
		return fmt.Sprintf("%v", v)
	}
}

package pregel

import "fmt"

// Context gives the compute UDF access to superstep-scoped state and
// actions, mirroring the methods of Figure 9 (getSuperstep, sendMsg,
// aggregate, graph mutation, and the cached global state of Section 5.7).
type Context interface {
	// Superstep returns the current superstep number (1-based).
	Superstep() int64
	// NumVertices returns the global vertex count as of the end of the
	// previous superstep.
	NumVertices() int64
	// NumEdges returns the global edge count as of the end of the
	// previous superstep.
	NumEdges() int64
	// GlobalAggregate returns the global aggregate produced by the
	// previous superstep, or nil in superstep 1.
	GlobalAggregate() Value
	// Config returns a job configuration string (Figure 9's
	// conf.getLong pattern).
	Config(key string) string

	// SendMessage delivers m to the vertex with the given id at the
	// start of the next superstep. m is serialized immediately, so the
	// caller may reuse the Value.
	SendMessage(to VertexID, m Value)
	// Aggregate contributes v to the global aggregation function.
	Aggregate(v Value)
	// AddVertex requests insertion of a new vertex at the end of the
	// superstep (conflicts resolved by the job's Resolver).
	AddVertex(v *Vertex)
	// RemoveVertex requests deletion of a vertex at the end of the
	// superstep.
	RemoveVertex(id VertexID)
}

// Program is the vertex compute UDF. It is invoked once per active
// vertex per superstep with the messages sent to that vertex in the
// previous superstep. The vertex may be mutated in place; the runtime
// persists it after the call.
type Program interface {
	Compute(ctx Context, v *Vertex, msgs []Value) error
}

// ProgramFunc adapts a function to Program.
type ProgramFunc func(ctx Context, v *Vertex, msgs []Value) error

// Compute implements Program.
func (f ProgramFunc) Compute(ctx Context, v *Vertex, msgs []Value) error {
	return f(ctx, v, msgs)
}

// Combiner pre-aggregates messages addressed to the same destination
// (Table 2). Combine must be commutative and associative; it may reuse a.
type Combiner interface {
	Combine(a, b Value) Value
}

// CombinerFunc adapts a function to Combiner.
type CombinerFunc func(a, b Value) Value

// Combine implements Combiner.
func (f CombinerFunc) Combine(a, b Value) Value { return f(a, b) }

// Aggregator computes the global aggregate state across all vertices'
// contributions (Table 2). Merge must be commutative and associative.
type Aggregator interface {
	// Zero returns the identity element.
	Zero() Value
	// Merge folds two partial aggregates (or an aggregate and a vertex
	// contribution) into one; it may reuse a.
	Merge(a, b Value) Value
}

// Resolver reconciles graph mutations targeting one vertex id
// (Table 2's resolve UDF). Per the Pregel contract, deletions are
// applied before insertions, then Resolve settles remaining conflicts.
type Resolver interface {
	// Resolve returns the final vertex for vid, or nil to delete it.
	// existing is the pre-mutation vertex (nil if absent, or already
	// nil if removed was requested), additions are the AddVertex
	// requests in arrival order.
	Resolve(vid VertexID, existing *Vertex, additions []*Vertex, removed bool) *Vertex
}

// DefaultResolver applies the documented default conflict ordering:
// deletions first, then insertions, with the last addition winning.
// A duplicate addVertex of a vertex that survived deletion MERGES
// rather than replaces: the addition's value is adopted, the existing
// edge list is kept, and the vertex is reactivated — a duplicate insert
// must not silently drop a vertex's edges. After an explicit removal
// the insertion starts fresh (remove-then-add is the documented way to
// reset a vertex). Messages sent to a vertex that does not exist at
// delivery time — removed, or never created (a dangling edge's head) —
// are handled by the runtime, not the resolver: the vertex is
// materialized with the codec's zero value and computes the messages.
type DefaultResolver struct{}

// Resolve implements Resolver.
func (DefaultResolver) Resolve(vid VertexID, existing *Vertex, additions []*Vertex, removed bool) *Vertex {
	v := existing
	if removed {
		v = nil
	}
	if len(additions) > 0 {
		add := additions[len(additions)-1]
		if v != nil {
			v.Value = add.Value
			v.Halted = false
			return v
		}
		v = add
	}
	return v
}

// JoinKind selects the message-delivery join plan (Section 5.3.2).
type JoinKind int

const (
	// FullOuterJoin merges the message stream with a full vertex-index
	// scan; best when most vertices are live (PageRank).
	FullOuterJoin JoinKind = iota
	// LeftOuterJoin probes the vertex index per message, using the Vid
	// live-vertex index; best for message-sparse algorithms (SSSP).
	LeftOuterJoin
)

func (k JoinKind) String() string {
	if k == LeftOuterJoin {
		return "leftouter"
	}
	return "fullouter"
}

// GroupByKind selects the message-combination group-by (Section 5.3.1).
type GroupByKind int

const (
	// SortGroupBy uses sort-based grouping on both sides.
	SortGroupBy GroupByKind = iota
	// HashSortGroupBy uses hash-based in-memory grouping, sorting on
	// spill/emit; best when distinct receivers are few.
	HashSortGroupBy
)

func (k GroupByKind) String() string {
	if k == HashSortGroupBy {
		return "hashsort"
	}
	return "sort"
}

// ConnectorKind selects the message redistribution policy (Figure 7).
type ConnectorKind int

const (
	// UnmergeConnector is the m-to-n partitioning connector (fully
	// pipelined) with receiver-side re-grouping.
	UnmergeConnector ConnectorKind = iota
	// MergeConnector is the m-to-n partitioning merging connector
	// (sender-side materializing) with a one-pass preclustered
	// receiver-side group-by.
	MergeConnector
)

func (k ConnectorKind) String() string {
	if k == MergeConnector {
		return "merge"
	}
	return "unmerge"
}

// StorageKind selects the vertex access method (Section 5.2).
type StorageKind int

const (
	// BTreeStorage favors in-place updates (PageRank).
	BTreeStorage StorageKind = iota
	// LSMStorage favors drastic size changes and frequent mutations
	// (path merging in genome assembly).
	LSMStorage
)

func (k StorageKind) String() string {
	if k == LSMStorage {
		return "lsm"
	}
	return "btree"
}

// Job configures one Pregelix job: the program, its UDFs, value codecs,
// I/O paths, and the physical plan hints (2 joins x 2 group-bys x 2
// connectors x 2 storages = the 16 tailored executions of Section 5.8).
type Job struct {
	Name    string
	Program Program

	// Codec factories for the user's value types.
	Codec Codec

	// Optional UDFs.
	Combiner   Combiner
	Aggregator Aggregator
	Resolver   Resolver // nil = DefaultResolver

	// Physical plan hints.
	Join      JoinKind
	GroupBy   GroupByKind
	Connector ConnectorKind
	Storage   StorageKind

	// AutoPlan enables the cost-based plan advisor (the paper's stated
	// future work, Section 9): the runtime re-chooses the join strategy
	// before every superstep from the observed message/live-vertex
	// sparsity, switching between the full-outer-join plan
	// (message-dense supersteps) and the left-outer-join plan
	// (message-sparse supersteps). The Join hint is then only the
	// superstep-1 default.
	AutoPlan bool

	// InputPath/OutputPath are DFS paths; Input is read unless the job
	// is pipelined after a compatible predecessor, and Output is
	// written unless a compatible successor is pipelined after it.
	InputPath  string
	OutputPath string

	// CheckpointEvery checkpoints state every N supersteps (0 = off).
	CheckpointEvery int
	// MaxSupersteps caps execution (0 = until convergence).
	MaxSupersteps int

	// Config carries algorithm parameters to the compute UDF.
	Config map[string]string
}

// Validate checks the job for completeness.
func (j *Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("pregel: job needs a name")
	}
	if j.Program == nil {
		return fmt.Errorf("pregel: job %s needs a Program", j.Name)
	}
	if j.Codec.NewVertexValue == nil {
		return fmt.Errorf("pregel: job %s needs Codec.NewVertexValue", j.Name)
	}
	if j.Codec.NewMessage == nil {
		return fmt.Errorf("pregel: job %s needs Codec.NewMessage", j.Name)
	}
	return nil
}

// ResolverOrDefault returns the configured resolver or the default.
func (j *Job) ResolverOrDefault() Resolver {
	if j.Resolver != nil {
		return j.Resolver
	}
	return DefaultResolver{}
}

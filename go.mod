module pregelix

go 1.24

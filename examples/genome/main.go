// Genome: the Genomix use case of the paper's Section 6 — iterative De
// Bruijn path merging with heavy vertex addition/removal, run as a
// pipelined job array (Section 5.6) over LSM vertex storage, the
// combination the paper recommends for this workload.
//
//	go run ./examples/genome
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
	"pregelix/pregel"
	"pregelix/pregel/algorithms"
)

func main() {
	baseDir, err := os.MkdirTemp("", "pregelix-genome-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(baseDir)
	rt, err := core.NewRuntime(core.Options{BaseDir: baseDir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// A De Bruijn-like graph: one long backbone path plus branch stubs
	// (the single paths a genome assembler collapses between cleaning
	// rounds).
	g := graphgen.Chain(8000, 500, 11)
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, g); err != nil {
		log.Fatal(err)
	}
	if err := rt.DFS.WriteFile("/genome/debruijn", buf.Bytes()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input De Bruijn-like graph: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	// Chain one job per merge round, pipelined: intermediate state
	// never round-trips through the DFS and the LSM vertex indexes are
	// reused across jobs.
	const rounds = 8
	var jobs []*pregel.Job
	for r := 0; r < rounds; r++ {
		j := algorithms.NewPathMergeRoundJob("genome-merge", "/genome/debruijn", "/genome/contigs", r)
		j.Storage = pregel.LSMStorage
		jobs = append(jobs, j)
	}
	all, err := rt.RunPipeline(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	for r, stats := range all {
		fmt.Printf("round %d: %d vertices remain (%d supersteps, %v)\n",
			r+1, stats.FinalState.NumVertices, stats.Supersteps,
			stats.RunDuration.Round(1e6))
	}
	final := all[len(all)-1].FinalState
	fmt.Printf("merged %d chain vertices into %d contig vertices\n",
		int64(g.NumVertices())-final.NumVertices, final.NumVertices)
	if !rt.DFS.Exists("/genome/contigs") {
		log.Fatal("contigs output missing")
	}
}

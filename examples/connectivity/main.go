// Connectivity: the graph-connectivity building blocks of the paper's
// Section 6 use case — connected components, reachability, and a BFS
// spanning tree — chained over one undirected graph.
//
//	go run ./examples/connectivity
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
	"pregelix/pregel/algorithms"
)

func main() {
	baseDir, err := os.MkdirTemp("", "pregelix-conn-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(baseDir)
	rt, err := core.NewRuntime(core.Options{BaseDir: baseDir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Two disjoint communities: a BTC-like graph plus a scaled-up copy
	// (the deep-copy renumbering of Section 7.1 makes it disconnected).
	g := graphgen.ScaleUp(graphgen.BTC(5000, 6, 3), 2)
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, g); err != nil {
		log.Fatal(err)
	}
	if err := rt.DFS.WriteFile("/graphs/social", buf.Bytes()); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// 1. Connected components.
	cc := algorithms.NewConnectedComponentsJob("cc", "/graphs/social", "/results/cc")
	ccStats, err := rt.Run(ctx, cc)
	if err != nil {
		log.Fatal(err)
	}
	components := map[string]int{}
	forEachValue(rt, "/results/cc", func(vid, value string) {
		components[value]++
	})
	fmt.Printf("connected components: %d components over %d vertices (%d supersteps)\n",
		len(components), ccStats.FinalState.NumVertices, ccStats.Supersteps)
	for label, size := range components {
		fmt.Printf("  component rooted at %s: %d vertices\n", label, size)
	}

	// 2. Reachability from vertex 1 (covers only its own component).
	reach := algorithms.NewReachabilityJob("reach", "/graphs/social", "/results/reach", 1)
	if _, err := rt.Run(ctx, reach); err != nil {
		log.Fatal(err)
	}
	reached := 0
	forEachValue(rt, "/results/reach", func(vid, value string) {
		if value == "true" {
			reached++
		}
	})
	fmt.Printf("reachability: %d vertices reachable from vertex 1\n", reached)

	// 3. BFS spanning tree from vertex 1.
	bfs := algorithms.NewBFSTreeJob("bfs", "/graphs/social", "/results/bfs", 1)
	bfsStats, err := rt.Run(ctx, bfs)
	if err != nil {
		log.Fatal(err)
	}
	inTree := 0
	forEachValue(rt, "/results/bfs", func(vid, value string) {
		if value != "-1" {
			inTree++
		}
	})
	fmt.Printf("bfs spanning tree: %d vertices attached in %d supersteps\n",
		inTree, bfsStats.Supersteps)
	if inTree != reached {
		log.Fatalf("tree size %d disagrees with reachable set %d", inTree, reached)
	}
}

func forEachValue(rt *core.Runtime, path string, fn func(vid, value string)) {
	out, err := rt.DFS.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		f := strings.SplitN(sc.Text(), "\t", 3)
		if len(f) >= 2 {
			fn(f[0], f[1])
		}
	}
}

// Shortest paths: the message-sparse workload of the paper's Figure 9,
// run with the exact plan hints that figure sets — left outer join,
// HashSort group-by, unmerged connector — and compared against the
// default full-outer-join plan to show the Section 7.5 effect.
//
//	go run ./examples/shortestpaths
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
	"pregelix/pregel"
	"pregelix/pregel/algorithms"
)

func main() {
	baseDir, err := os.MkdirTemp("", "pregelix-sssp-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(baseDir)
	rt, err := core.NewRuntime(core.Options{BaseDir: baseDir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// A weighted road-network-like graph (BTC generator emits edge
	// weights, which SSSP reads as distances).
	g := graphgen.BTC(20000, 6, 7)
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, g); err != nil {
		log.Fatal(err)
	}
	if err := rt.DFS.WriteFile("/graphs/roads", buf.Bytes()); err != nil {
		log.Fatal(err)
	}

	const source = 1
	run := func(label string, join pregel.JoinKind) *core.JobStats {
		job := algorithms.NewSSSPJob("sssp-"+label, "/graphs/roads", "/results/"+label, source)
		job.Join = join
		stats, err := rt.Run(context.Background(), job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %2d supersteps, avg iteration %8v, total messages %d\n",
			label, stats.Supersteps, stats.AvgIterationTime().Round(1e5), stats.TotalMessages)
		return stats
	}

	fmt.Printf("single source shortest paths from vertex %d over %d vertices\n",
		source, g.NumVertices())
	run("left-outer-join", pregel.LeftOuterJoin) // Figure 9's hints
	run("full-outer-join", pregel.FullOuterJoin) // the default plan

	// Show a few distances from the LOJ run.
	out, err := rt.DFS.ReadFile("/results/left-outer-join")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sample distances:")
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	shown := 0
	for sc.Scan() && shown < 5 {
		f := strings.SplitN(sc.Text(), "\t", 3)
		id, _ := strconv.ParseUint(f[0], 10, 64)
		if id%4999 != 0 { // sample sparsely
			continue
		}
		fmt.Printf("  dist(%d -> %s) = %s\n", source, f[0], f[1])
		shown++
	}
}

// Quickstart: run PageRank on a small generated web graph with the
// default Pregelix physical plan, then print the top-ranked pages.
//
//	go run ./examples/quickstart
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
	"pregelix/pregel/algorithms"
)

func main() {
	baseDir, err := os.MkdirTemp("", "pregelix-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(baseDir)

	// A Pregelix "cluster": 4 simulated machines, each with its own
	// disk directory and memory budget.
	rt, err := core.NewRuntime(core.Options{BaseDir: baseDir, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Generate a 5,000-page web-like graph and put it in the DFS.
	g := graphgen.Webmap(5000, 8, 42)
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, g); err != nil {
		log.Fatal(err)
	}
	if err := rt.DFS.WriteFile("/graphs/web", buf.Bytes()); err != nil {
		log.Fatal(err)
	}

	// Run 10 PageRank iterations with the paper's default plan: index
	// full outer join, sort-based group-by, m-to-n partitioning
	// connector, B-tree vertex storage.
	job := algorithms.NewPageRankJob("quickstart", "/graphs/web", "/results/ranks", 10)
	stats, err := rt.Run(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank finished: %d supersteps over %d vertices / %d edges\n",
		stats.Supersteps, stats.FinalState.NumVertices, stats.FinalState.NumEdges)
	fmt.Printf("load %v, compute %v (avg iteration %v)\n",
		stats.LoadDuration.Round(1e6), stats.RunDuration.Round(1e6),
		stats.AvgIterationTime().Round(1e6))

	// Read the dumped result back from the DFS and show the top pages.
	out, err := rt.DFS.ReadFile("/results/ranks")
	if err != nil {
		log.Fatal(err)
	}
	type page struct {
		id   uint64
		rank float64
	}
	var pages []page
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		f := strings.SplitN(sc.Text(), "\t", 3)
		id, _ := strconv.ParseUint(f[0], 10, 64)
		rank, _ := strconv.ParseFloat(f[1], 64)
		pages = append(pages, page{id, rank})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })
	fmt.Println("top 5 pages:")
	for _, p := range pages[:5] {
		fmt.Printf("  page %-6d rank %.6f\n", p.id, p.rank)
	}
}

// Command pregelix-bench regenerates the paper's tables and figures on
// the simulated cluster. Each experiment prints rows shaped like the
// corresponding artifact in the paper's Section 7.
//
// Usage:
//
//	pregelix-bench -list
//	pregelix-bench -experiment fig10a [-nodes 8] [-ram 1048576]
//	pregelix-bench -experiment all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pregelix/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment ids")
		nodes      = flag.Int("nodes", 8, "simulated cluster size")
		ram        = flag.Int64("ram", 1<<20, "per-machine RAM budget in bytes")
		ratios     = flag.String("ratios", "", "comma-separated dataset/RAM ratios (default per-experiment)")
		iterations = flag.Int("pr-iterations", 5, "PageRank iterations")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "pregelix-bench: -experiment or -list required")
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Nodes:              *nodes,
		RAMPerNode:         *ram,
		PageRankIterations: *iterations,
		Out:                os.Stdout,
	}
	if *ratios != "" {
		for _, part := range strings.Split(*ratios, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pregelix-bench: bad ratio %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Ratios = append(opts.Ratios, r)
		}
	}

	ctx := context.Background()
	run := func(e bench.Experiment) {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(ctx, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pregelix-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "pregelix-bench: unknown experiment %q (try -list)\n", *experiment)
		os.Exit(2)
	}
	run(e)
}

// Command pregelix-bench regenerates the paper's tables and figures on
// the simulated cluster. Each experiment prints rows shaped like the
// corresponding artifact in the paper's Section 7.
//
// Usage:
//
//	pregelix-bench -list
//	pregelix-bench -experiment fig10a [-nodes 8] [-ram 1048576]
//	pregelix-bench -experiment all [-json BENCH_PR3.json]
//
// Every run also emits a machine-readable JSON report (default
// BENCH_PR3.json, disable with -json "") with per-experiment wall
// time and per-run wall time, supersteps, I/O bytes, and — for the
// framepath/wirepath experiments — allocations per tuple and shuffle
// throughput over in-process channels vs loopback TCP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pregelix/internal/bench"
)

// experimentReport is one experiment's entry in the JSON report.
type experimentReport struct {
	ID          string            `json:"id"`
	Title       string            `json:"title"`
	WallSeconds float64           `json:"wallSeconds"`
	Runs        []bench.RunMetric `json:"runs,omitempty"`
}

// benchReport is the top-level BENCH_PR<n>.json document.
type benchReport struct {
	GeneratedAt string             `json:"generatedAt"`
	Nodes       int                `json:"nodes"`
	RAMPerNode  int64              `json:"ramPerNode"`
	Experiments []experimentReport `json:"experiments"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment ids")
		nodes      = flag.Int("nodes", 8, "simulated cluster size")
		ram        = flag.Int64("ram", 1<<20, "per-machine RAM budget in bytes")
		ratios     = flag.String("ratios", "", "comma-separated dataset/RAM ratios (default per-experiment)")
		iterations = flag.Int("pr-iterations", 5, "PageRank iterations")
		jsonPath   = flag.String("json", "BENCH_PR3.json", "machine-readable report path (\"\" = disabled)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "pregelix-bench: -experiment or -list required")
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Nodes:              *nodes,
		RAMPerNode:         *ram,
		PageRankIterations: *iterations,
		Out:                os.Stdout,
	}
	if *ratios != "" {
		for _, part := range strings.Split(*ratios, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pregelix-bench: bad ratio %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Ratios = append(opts.Ratios, r)
		}
	}

	ctx := context.Background()
	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Nodes:       *nodes,
		RAMPerNode:  *ram,
	}
	run := func(e bench.Experiment) {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		met := &bench.Metrics{}
		per := opts
		per.Metrics = met
		start := time.Now()
		if err := e.Run(ctx, per); err != nil {
			fmt.Fprintf(os.Stderr, "pregelix-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		runs := met.Runs()
		for i := range runs {
			runs[i].Experiment = e.ID
		}
		report.Experiments = append(report.Experiments, experimentReport{
			ID:          e.ID,
			Title:       e.Title,
			WallSeconds: time.Since(start).Seconds(),
			Runs:        runs,
		})
		fmt.Println()
	}
	if *experiment == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
	} else {
		e, ok := bench.Find(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "pregelix-bench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		run(e)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pregelix-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pregelix-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pregelix-bench: wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
	}
}

// Command pregelix runs one built-in graph algorithm over a local graph
// file on the simulated Pregelix cluster, with the physical plan hints
// of Section 5.3 exposed as flags — or serves a multi-tenant cluster
// over HTTP that accepts concurrent job submissions.
//
// Usage:
//
//	pregelix -algorithm pagerank -input graph.txt -output ranks.txt \
//	         -nodes 4 -join fullouter -groupby sort -connector unmerge \
//	         -storage btree
//
//	pregelix serve -listen 127.0.0.1:8080 -nodes 4 -max-concurrent 2
//
//	pregelix serve -listen 127.0.0.1:8080 -workers 2 -cluster-listen 127.0.0.1:9090
//	pregelix worker -cc 127.0.0.1:9090 -nodes 2
//
// In serve mode, clients upload graphs with PUT /files/<dfs-path>,
// submit jobs with POST /jobs, poll GET /jobs and GET /jobs/<id>,
// cancel with DELETE /jobs/<id>, and read cluster/scheduler metrics
// from GET /stats.
//
// With -workers N, serve becomes a cluster controller: it waits for N
// `pregelix worker` processes to register over the control plane, then
// schedules every job across them. Each worker hosts its share of the
// node controllers as a separate OS process, and connector shuffles
// move packed frame images between workers over the wire transport
// (internal/wire) instead of in-process channels.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"pregelix/internal/core"
	"pregelix/internal/hyracks"
	"pregelix/pregel"
	"pregelix/pregel/algorithms"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "worker":
			workerMain(os.Args[2:])
			return
		}
	}
	var (
		algorithm  = flag.String("algorithm", "pagerank", "pagerank | sssp | cc | reachability | bfs | triangles | cliques | sample | pathmerge | deltapagerank | kcore")
		input      = flag.String("input", "", "input graph file (adjacency text)")
		output     = flag.String("output", "", "output file (default: stdout)")
		nodes      = flag.Int("nodes", 4, "simulated cluster size")
		ram        = flag.Int64("ram", 0, "per-machine RAM budget in bytes (0 = unlimited)")
		partitions = flag.Int("partitions-per-node", 1, "graph partitions per machine")
		source     = flag.Uint64("source", 1, "source vertex (sssp/reachability/bfs)")
		iterations = flag.Int("iterations", 10, "iterations (pagerank) / rounds (pathmerge)")
		join       = flag.String("join", "", "fullouter | leftouter (default: per-algorithm)")
		groupby    = flag.String("groupby", "", "sort | hashsort")
		connector  = flag.String("connector", "", "merge | unmerge")
		storage    = flag.String("storage", "", "btree | lsm")
		checkpoint = flag.Int("checkpoint-every", 0, "checkpoint every N supersteps (0 = off)")
		verbose    = flag.Bool("v", false, "print per-superstep statistics")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "pregelix: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	job := buildJob(*algorithm, *source, *iterations)
	if job == nil {
		fmt.Fprintf(os.Stderr, "pregelix: unknown algorithm %q\n", *algorithm)
		os.Exit(2)
	}
	job.InputPath, job.OutputPath = "/in/graph", "/out/result"
	job.CheckpointEvery = *checkpoint
	applyHint(join, map[string]func(){
		"fullouter": func() { job.Join = pregel.FullOuterJoin },
		"leftouter": func() { job.Join = pregel.LeftOuterJoin },
	})
	applyHint(groupby, map[string]func(){
		"sort":     func() { job.GroupBy = pregel.SortGroupBy },
		"hashsort": func() { job.GroupBy = pregel.HashSortGroupBy },
	})
	applyHint(connector, map[string]func(){
		"merge":   func() { job.Connector = pregel.MergeConnector },
		"unmerge": func() { job.Connector = pregel.UnmergeConnector },
	})
	applyHint(storage, map[string]func(){
		"btree": func() { job.Storage = pregel.BTreeStorage },
		"lsm":   func() { job.Storage = pregel.LSMStorage },
	})

	baseDir, err := os.MkdirTemp("", "pregelix-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(baseDir)
	rt, err := core.NewRuntime(core.Options{
		BaseDir:           baseDir,
		Nodes:             *nodes,
		PartitionsPerNode: *partitions,
		NodeConfig:        hyracks.NodeConfig{RAMBytes: *ram},
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	data, err := os.ReadFile(*input)
	if err != nil {
		fatal(err)
	}
	if err := rt.DFS.WriteFile(job.InputPath, data); err != nil {
		fatal(err)
	}

	stats, err := rt.Run(context.Background(), job)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "pregelix: %s finished: %d supersteps, %d vertices, %d messages, load %v, run %v\n",
		job.Name, stats.Supersteps, stats.FinalState.NumVertices, stats.TotalMessages,
		stats.LoadDuration.Round(1e6), stats.RunDuration.Round(1e6))
	if *verbose {
		for _, ss := range stats.SuperstepStats {
			fmt.Fprintf(os.Stderr, "  superstep %3d: %8v  msgs=%-10d live=%-10d io=%dB\n",
				ss.Superstep, ss.Duration.Round(1e5), ss.Messages, ss.LiveVertices, ss.IOBytes)
		}
	}

	result, err := rt.DFS.ReadFile(job.OutputPath)
	if err != nil {
		fatal(err)
	}
	if *output == "" {
		os.Stdout.Write(result)
		return
	}
	if err := os.WriteFile(*output, result, 0o644); err != nil {
		fatal(err)
	}
}

func buildJob(algorithm string, source uint64, iterations int) *pregel.Job {
	switch algorithm {
	case "pagerank":
		return algorithms.NewPageRankJob("pagerank", "", "", iterations)
	case "sssp":
		return algorithms.NewSSSPJob("sssp", "", "", source)
	case "cc":
		return algorithms.NewConnectedComponentsJob("cc", "", "")
	case "reachability":
		return algorithms.NewReachabilityJob("reachability", "", "", source)
	case "bfs":
		return algorithms.NewBFSTreeJob("bfs", "", "", source)
	case "triangles":
		return algorithms.NewTriangleCountJob("triangles", "", "")
	case "cliques":
		return algorithms.NewMaximalCliquesJob("cliques", "", "")
	case "sample":
		return algorithms.NewRandomWalkSampleJob("sample", "", "", 16, 8)
	case "pathmerge":
		return algorithms.NewPathMergeJob("pathmerge", "", "", iterations)
	case "deltapagerank":
		return algorithms.NewDeltaPageRankJob("deltapagerank", "", "", 0)
	case "kcore":
		return algorithms.NewKCoreJob("kcore", "", "", 3)
	default:
		return nil
	}
}

func applyHint(flagVal *string, actions map[string]func()) {
	if *flagVal == "" {
		return
	}
	if fn, ok := actions[*flagVal]; ok {
		fn()
		return
	}
	fmt.Fprintf(os.Stderr, "pregelix: bad hint %q\n", *flagVal)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pregelix:", err)
	os.Exit(1)
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pregelix/internal/core"
	"pregelix/internal/delta"
	"pregelix/pregel"
)

// clusterOptions carries the cluster-mode serve flags.
type clusterOptions struct {
	listen        string
	workers       int
	partitions    int
	ram           int64
	clusterListen string
	maxQueued     int
	replaceWait   time.Duration
	// stateDir, when set, makes the whole control plane durable: the
	// coordinator's checkpoint store, catalog and lease plus the
	// controller's job registry and file store all live there, and a
	// restarted process (or a standby taking over) resumes from them.
	stateDir      string
	standby       bool
	leaseInterval time.Duration
	// adaptive enables the coordinator's runtime-stats feedback loop
	// (join replanning, hot-partition splitting, straggler relief).
	adaptive bool
}

// serveCluster is the cluster-mode serving path: instead of simulating
// machines in-process, the server is a cluster controller that waits for
// `pregelix worker` processes to register and schedules every submitted
// job across them. The HTTP API is the same shape as single-process
// serve: PUT /files, POST /jobs, GET /jobs[/<id>], DELETE /jobs/<id>,
// GET /stats.
func serveCluster(opts clusterOptions) {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdown := make(chan struct{})
	go func() {
		<-stop
		close(shutdown)
	}()

	// With a state dir, coordinatorship is guarded by a lease file: the
	// primary renews it, a standby (-standby-cc) parks here until the
	// record lapses, and a fenced zombie steps down when Renew fails.
	var lease *core.Lease
	if opts.stateDir != "" {
		if err := os.MkdirAll(opts.stateDir, 0o755); err != nil {
			fatal(err)
		}
		leasePath := filepath.Join(opts.stateDir, "cc.lease")
		host, _ := os.Hostname()
		holder := fmt.Sprintf("%s/%d", host, os.Getpid())
		var err error
		if opts.standby {
			fmt.Fprintf(os.Stderr, "pregelix serve: standby — watching coordinator lease %s\n", leasePath)
			lease, err = core.WaitForLease(shutdown, leasePath, holder, opts.leaseInterval)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pregelix serve: standby stopped: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "pregelix serve: lease acquired (epoch %d) — assuming coordinator role\n", lease.Epoch())
		} else {
			lease, err = core.AcquireLease(leasePath, holder, opts.leaseInterval)
			if errors.Is(err, core.ErrLeaseHeld) {
				// A coordinator that was SIGKILLed leaves a fresh-looking
				// record behind; a restart should wait out the staleness
				// window (3 renewal intervals), not fail. A genuinely live
				// holder keeps renewing and keeps us parked — which is the
				// mutual exclusion working.
				fmt.Fprintf(os.Stderr, "pregelix serve: %v — waiting for it to lapse\n", err)
				lease, err = core.WaitForLease(shutdown, leasePath, holder, opts.leaseInterval)
			}
			if err != nil {
				fatal(err)
			}
		}
		defer lease.Release()
	}

	coord, err := core.NewCoordinator(core.CoordinatorConfig{
		ListenAddr:        opts.clusterListen,
		Workers:           opts.workers,
		PartitionsPerNode: opts.partitions,
		RAMBytes:          opts.ram,
		ReplaceWait:       opts.replaceWait,
		StateDir:          opts.stateDir,
		Adaptive:          core.AdaptiveOptions{Enabled: opts.adaptive},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pregelix "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	s := newClusterServer(coord)
	s.maxQueued = opts.maxQueued
	s.stateDir = opts.stateDir
	resume := s.loadState()

	// Bind explicitly so -listen :0 works and the printed address is the
	// real one (the process test harness parses this line).
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s}
	go func() {
		<-shutdown
		fmt.Fprintln(os.Stderr, "pregelix serve: draining")
		srv.Close()
	}()

	if lease != nil {
		renewDone := make(chan struct{})
		defer close(renewDone)
		go func() {
			tick := time.NewTicker(lease.Interval() / 2)
			defer tick.Stop()
			for {
				select {
				case <-renewDone:
					return
				case <-tick.C:
				}
				if err := lease.Renew(); err != nil {
					fmt.Fprintf(os.Stderr, "pregelix serve: coordinator lease lost (%v) — stepping down\n", err)
					srv.Close()
					return
				}
			}
		}()
	}
	if opts.stateDir != "" {
		go s.resumeRestored(resume)
	}

	fmt.Fprintf(os.Stderr, "pregelix serve: cluster mode — waiting for %d workers on %s, HTTP on %s\n",
		opts.workers, coord.Addr(), ln.Addr())
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// clusterJob tracks one submission through the distributed cluster.
type clusterJob struct {
	id     int64
	name   string
	cancel context.CancelFunc
	done   chan struct{}
	// spec/req are kept so a later delta refresh can rebuild the same
	// program (the workers rebuild from spec, the controller from req).
	spec []byte
	req  jobRequest
	// resumeCtx is set on jobs restored mid-flight from a previous
	// controller's registry; their re-run uses it instead of a fresh
	// submission context so DELETE still cancels them.
	resumeCtx context.Context

	mu       sync.Mutex
	state    string // queued | running | done | failed
	errText  string
	stats    *core.JobStats
	started  time.Time
	finished time.Time
	// deltaVersion is the latest sealed streaming-ingest version, kept
	// here (and persisted) so a restarted controller chains the next
	// refresh from it rather than from the original job name.
	deltaVersion string
	// liveSupersteps tracks progress while the job runs (fed by the
	// coordinator's per-superstep callback), so pollers — and the
	// fault-injection harness timing its kills — see movement before the
	// final stats land.
	liveSupersteps int64
}

func (j *clusterJob) progress(ss int64) {
	j.mu.Lock()
	j.liveSupersteps = ss
	j.mu.Unlock()
}

func (j *clusterJob) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	if state == "running" {
		j.started = time.Now()
	}
}

func (j *clusterJob) finish(stats *core.JobStats, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.stats = stats
	switch {
	case err == nil:
		j.state = "done"
	case errors.Is(err, context.Canceled):
		// DELETE /jobs/{id} cancels the submission context; report it
		// the way single-process serve does.
		j.state = "canceled"
		j.errText = err.Error()
	default:
		j.state = "failed"
		j.errText = err.Error()
	}
}

// clusterServer is the HTTP face of the coordinator. Uploaded files live
// in the controller's memory until a job ships them to the workers; job
// outputs land back here for download.
type clusterServer struct {
	coord *core.Coordinator
	mux   *http.ServeMux
	// maxQueued bounds jobs admitted but not yet finished (0 = unbounded).
	maxQueued int
	// stateDir, when set, backs the job registry and file store with
	// disk (serve_state.go) so a controller restart resumes them.
	stateDir string
	// runMu serializes job execution (one distributed job at a time, the
	// coordinator's own constraint) so job states report queued vs
	// running truthfully.
	runMu sync.Mutex

	mu     sync.Mutex
	files  map[string][]byte
	jobs   map[int64]*clusterJob
	order  []int64
	nextID int64

	// dmu guards the per-job streaming-ingest trackers (journal +
	// background delta refresher, backed by the coordinator's replicated
	// checkpoint store).
	dmu    sync.Mutex
	deltas map[int64]*deltaTracker
}

func newClusterServer(coord *core.Coordinator) *clusterServer {
	s := &clusterServer{
		coord:  coord,
		mux:    http.NewServeMux(),
		files:  make(map[string][]byte),
		jobs:   make(map[int64]*clusterJob),
		deltas: make(map[int64]*deltaTracker),
	}
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/files/", s.handleFiles)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/scale", s.handleScale)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

func (s *clusterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *clusterServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.coord.Ready() {
		httpError(w, http.StatusServiceUnavailable, "waiting for workers")
		return
	}
	// A lost worker is recoverable — the next job submission repairs the
	// topology (standby adoption or redistribution over survivors), and
	// a running checkpointed job rolls back and resumes on its own — so
	// only a cluster that cannot run anything (every worker gone, no
	// standby parked) reports unhealthy. GET /stats carries the
	// recovery-event log for the partial-failure picture.
	if err := s.coord.Err(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "cluster down: %v", err)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *clusterServer) view(j *clusterJob) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:    j.id,
		Name:  j.name,
		State: j.state,
		Error: j.errText,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.RunTimeMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if j.stats != nil {
		v.Supersteps = j.stats.Supersteps
		v.Messages = j.stats.TotalMessages
		v.Vertices = j.stats.FinalState.NumVertices
		v.Checkpoints = j.stats.Checkpoints
		v.Recoveries = j.stats.Recoveries
		v.Rebalances = j.stats.Rebalances
		v.fillNetwork(j.stats)
	} else {
		v.Supersteps = j.liveSupersteps
	}
	// A job restored as "done" from a previous controller's registry has
	// no stats but its sealed result is still queryable, so the version
	// comes from the state, not the stats.
	if j.state == "done" {
		v.Version = j.name
		if j.deltaVersion != "" {
			v.Version = j.deltaVersion
		}
	}
	if d := s.delta(j.id); d != nil {
		v.Version, v.DeltaSeq, v.Refreshing, v.DeltaError = d.status()
	}
	return v
}

// delta returns the job's ingest tracker, nil if no mutations were ever
// posted against it.
func (s *clusterServer) delta(id int64) *deltaTracker {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.deltas[id]
}

func (s *clusterServer) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		out := []jobView{}
		s.mu.Lock()
		jobs := make([]*clusterJob, 0, len(s.order))
		for _, id := range s.order {
			jobs = append(jobs, s.jobs[id])
		}
		s.mu.Unlock()
		for _, j := range jobs {
			out = append(out, s.view(j))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		var req jobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		// Validate on the controller with the same mapping the workers use.
		job, err := buildServeJob(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		input, ok := s.files[req.Input]
		if !ok {
			s.mu.Unlock()
			httpError(w, http.StatusBadRequest, "input %q not uploaded (PUT /files%s first)", req.Input, req.Input)
			return
		}
		if s.maxQueued > 0 {
			live := 0
			for _, j := range s.jobs {
				j.mu.Lock()
				if j.state == "queued" || j.state == "running" {
					live++
				}
				j.mu.Unlock()
			}
			if live >= s.maxQueued {
				s.mu.Unlock()
				httpError(w, http.StatusServiceUnavailable, "job queue full: %d jobs in flight", live)
				return
			}
		}
		s.nextID++
		ctx, cancel := context.WithCancel(context.Background())
		j := &clusterJob{
			id:     s.nextID,
			name:   fmt.Sprintf("%s@j%d", job.Name, s.nextID),
			cancel: cancel,
			done:   make(chan struct{}),
			spec:   body,
			req:    req,
			state:  "queued",
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		s.saveState()

		go s.runJob(ctx, j, body, job, req, input, false)
		writeJSON(w, http.StatusAccepted, s.view(j))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST /jobs")
	}
}

func (s *clusterServer) runJob(ctx context.Context, j *clusterJob, spec []byte, job *pregel.Job, req jobRequest, input []byte, resume bool) {
	defer close(j.done)
	defer j.cancel()
	// Stay "queued" until this job actually holds the execution slot; a
	// DELETE while waiting cancels the submission context and RunJob
	// returns immediately.
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if ctx.Err() != nil {
		j.finish(nil, ctx.Err())
		s.saveState()
		return
	}
	j.setState("running")
	stats, output, err := s.coord.RunJob(ctx, core.DistSubmission{
		Name:       j.name,
		Spec:       spec,
		Job:        job,
		InputPath:  req.Input,
		InputData:  input,
		WantOutput: req.Output != "",
		Progress:   j.progress,
		Resume:     resume,
	})
	if err == nil && req.Output != "" {
		s.mu.Lock()
		s.files[req.Output] = output
		s.mu.Unlock()
		s.saveFile(req.Output, output)
	}
	j.finish(stats, err)
	s.saveState()
}

func (s *clusterServer) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/jobs/"), "/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", idStr)
		return
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if sub == "mutations" {
		s.handleMutations(w, r, j)
		return
	}
	if sub != "" {
		s.handleJobQuery(w, r, j, sub)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.view(j))
	case http.MethodDelete:
		j.cancel()
		writeJSON(w, http.StatusOK, s.view(j))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE /jobs/{id}")
	}
}

// handleJobQuery serves the cluster-mode query endpoints — the same
// /jobs/{id}/vertices, /topk and /neighbors routes as single-process
// serve, answered by fanning reads out to the workers that sealed the
// job's partitions (hot-vertex cache and request coalescing in front).
func (s *clusterServer) handleJobQuery(w http.ResponseWriter, r *http.Request, j *clusterJob, sub string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /jobs/{id}/{vertices|topk|neighbors}")
		return
	}
	j.mu.Lock()
	state := j.state
	version := j.name
	if j.deltaVersion != "" {
		// A restored controller may not have re-opened the tracker yet;
		// the registry's last sealed delta version routes queries until
		// it does.
		version = j.deltaVersion
	}
	j.mu.Unlock()
	if state != "done" {
		httpError(w, http.StatusConflict, "job %d has no queryable result (state %s)", j.id, state)
		return
	}
	// Delta refreshes advance the sealed version under the same job id;
	// always serve from the latest seal.
	if d := s.delta(j.id); d != nil {
		version = d.currentVersion()
	}
	serveQuery(w, r, sub, coordQuerier{r.Context(), s.coord, version})
}

// handleMutations is the cluster-mode streaming-ingest endpoint. The
// journal lives in the coordinator's replicated checkpoint store; the
// background refresher drives DeltaRefresh (clone + delta.ingest +
// delta.run across the workers), serialized with ordinary submissions
// through runMu so job states stay truthful.
func (s *clusterServer) handleMutations(w http.ResponseWriter, r *http.Request, j *clusterJob) {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != "done" {
		httpError(w, http.StatusConflict, "job %d has no sealed result to mutate (state %s)", j.id, state)
		return
	}
	d, err := s.trackerFor(j)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	serveMutations(w, r, d)
}

// trackerFor returns the job's ingest tracker, opening it on first use.
// The opened tracker resumes the version chain from the coordinator's
// re-adopted catalog when it names a chained version of this job, then
// from the persisted registry, then from the job name — so a refresh
// after a controller restart clones the latest sealed version instead
// of re-deriving everything from the original result.
func (s *clusterServer) trackerFor(j *clusterJob) (*deltaTracker, error) {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if d := s.deltas[j.id]; d != nil {
		return d, nil
	}
	refresh := func(fromVersion, name string, seq uint64, muts []delta.Mutation) error {
		req := j.req
		job, err := buildServeJob(&req)
		if err != nil {
			return err
		}
		s.runMu.Lock()
		defer s.runMu.Unlock()
		_, err = s.coord.DeltaRefresh(context.Background(), core.DeltaSubmission{
			Version: fromVersion,
			Name:    name,
			Spec:    j.spec,
			Job:     job,
			Muts:    muts,
		})
		return err
	}
	ver := j.name
	j.mu.Lock()
	if j.deltaVersion != "" {
		ver = j.deltaVersion
	}
	j.mu.Unlock()
	if v, ok := s.coord.LatestVersion(j.name); ok && (v == j.name || strings.HasPrefix(v, j.name+"@d")) {
		ver = v
	}
	d, err := newDeltaTracker(s.coord.DeltaStore(), fmt.Sprintf("/delta/j%d", j.id), ver, refresh)
	if err != nil {
		return nil, err
	}
	d.onSeal = func(version string, seq uint64) {
		j.mu.Lock()
		j.deltaVersion = version
		j.mu.Unlock()
		s.saveState()
	}
	s.deltas[j.id] = d
	return d, nil
}

// coordQuerier serves one result version through the coordinator's
// fan-out query path.
type coordQuerier struct {
	ctx     context.Context
	c       *core.Coordinator
	version string
}

func (q coordQuerier) Point(vid uint64) (core.VertexQueryResult, error) {
	return q.c.QueryVertex(q.ctx, q.version, vid)
}

func (q coordQuerier) TopK(k int) ([]core.TopKEntry, error) {
	return q.c.QueryTopK(q.ctx, q.version, k)
}

func (q coordQuerier) KHop(source uint64, hops int) (*core.KHopResult, error) {
	return q.c.QueryKHop(q.ctx, q.version, source, hops)
}

func (s *clusterServer) handleFiles(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/files")
	if path == "" || path == "/" {
		httpError(w, http.StatusBadRequest, "missing file path")
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.mu.Lock()
		s.files[path] = data
		s.mu.Unlock()
		s.saveFile(path, data)
		writeJSON(w, http.StatusCreated, map[string]string{"path": path})
	case http.MethodGet:
		s.mu.Lock()
		data, ok := s.files[path]
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "no file %s", path)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Write(data)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET, PUT or POST /files/{path}")
	}
}

// scaleView is the GET /scale payload: the live worker→nodes topology
// plus the elasticity log. Scaling out needs no API call — starting
// another `pregelix worker` against the cluster controller triggers the
// rebalance — so POST /scale only carries drain requests.
type scaleView struct {
	Workers  []core.WorkerInfo     `json:"workers"`
	Standbys int                   `json:"standbys"`
	Events   []core.RebalanceEvent `json:"events"`
}

// handleScale serves the elasticity API: GET returns the topology and
// rebalance log; POST {"drain": "<worker addr>"} asks the cluster to
// gracefully retire a worker (its partitions migrate out at the next
// superstep or job boundary, then it is released).
func (s *clusterServer) handleScale(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		out := scaleView{
			Workers:  s.coord.Topology(),
			Standbys: s.coord.Standbys(),
			Events:   s.coord.RebalanceEvents(),
		}
		if out.Workers == nil {
			out.Workers = []core.WorkerInfo{}
		}
		if out.Events == nil {
			out.Events = []core.RebalanceEvent{}
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req struct {
			Drain string `json:"drain"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.Drain == "" {
			httpError(w, http.StatusBadRequest, `missing "drain" (scale-out needs no API call: start another pregelix worker)`)
			return
		}
		if err := s.coord.Drain(req.Drain); err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"draining": req.Drain})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST /scale")
	}
}

// clusterStatsView is the cluster-mode GET /stats payload.
type clusterStatsView struct {
	Workers int `json:"workers"`
	// Standbys counts parked replacement workers awaiting adoption.
	Standbys int      `json:"standbys"`
	Nodes    []string `json:"nodes"`
	Jobs     struct {
		Total    int `json:"total"`
		Queued   int `json:"queued"`
		Running  int `json:"running"`
		Done     int `json:"done"`
		Failed   int `json:"failed"`
		Canceled int `json:"canceled"`
	} `json:"jobs"`
	// Recovery is the coordinator's failure-handling log: worker losses
	// and the repairs (standby adoption, node redistribution) that
	// followed.
	Recovery []core.RecoveryEvent `json:"recovery"`
	// Rebalance is the coordinator's elasticity log: workers joining
	// with partitions migrated onto them, graceful drains, refusals.
	Rebalance []core.RebalanceEvent `json:"rebalance"`
	// Adaptive is the runtime-stats feedback log (-adaptive only): join
	// plan switches, hot-partition splits and straggler reliefs, in
	// commit order.
	Adaptive []core.AdaptiveEvent `json:"adaptive"`
	// Network aggregates connector traffic over all finished jobs:
	// payload frame bytes vs post-compression socket bytes.
	Network networkView `json:"network"`
}

func (s *clusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	out := clusterStatsView{
		Workers:   s.coord.Workers(),
		Standbys:  s.coord.Standbys(),
		Nodes:     []string{},
		Recovery:  s.coord.RecoveryEvents(),
		Rebalance: s.coord.RebalanceEvents(),
		Adaptive:  s.coord.AdaptiveEvents(),
	}
	if out.Recovery == nil {
		out.Recovery = []core.RecoveryEvent{}
	}
	if out.Rebalance == nil {
		out.Rebalance = []core.RebalanceEvent{}
	}
	if out.Adaptive == nil {
		out.Adaptive = []core.AdaptiveEvent{}
	}
	for _, id := range s.coord.Nodes() {
		out.Nodes = append(out.Nodes, string(id))
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		out.Jobs.Total++
		j.mu.Lock()
		out.Network.add(j.stats)
		switch j.state {
		case "queued":
			out.Jobs.Queued++
		case "running":
			out.Jobs.Running++
		case "done":
			out.Jobs.Done++
		case "failed":
			out.Jobs.Failed++
		case "canceled":
			out.Jobs.Canceled++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	out.Network.finish()
	writeJSON(w, http.StatusOK, out)
}

package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pregelix/internal/core"
)

// newTestServer (single-process serve), doJSON, uploadGraph and
// waitJobState live in harness_test.go, shared with the delta and
// cluster-mode tests.

// TestServeSubmitAndPoll drives the full HTTP flow: upload a graph,
// submit concurrent jobs, poll until done, download the result, and
// read scheduler metrics.
func TestServeSubmitAndPoll(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var views []jobView
	for i := 0; i < 3; i++ {
		var v jobView
		doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
			Algorithm: "cc",
			Name:      fmt.Sprintf("serve-cc-%d", i),
			Input:     "/in/web",
			Output:    fmt.Sprintf("/out/cc-%d", i),
		}, http.StatusAccepted, &v)
		if v.ID == 0 || v.State == "" {
			t.Fatalf("submission view %+v", v)
		}
		views = append(views, v)
	}

	deadline := time.Now().Add(60 * time.Second)
	for _, v := range views {
		for {
			var cur jobView
			doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
			if cur.State == "done" {
				if cur.Supersteps == 0 || cur.Vertices != 120 {
					t.Fatalf("done job view %+v", cur)
				}
				break
			}
			if cur.State == "failed" || cur.State == "canceled" {
				t.Fatalf("job %d ended %s: %s", v.ID, cur.State, cur.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in %s", v.ID, cur.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Results must be retrievable through the files endpoint.
	resp, err := http.Get(ts.URL + "/files/out/cc-0")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "\t") {
		t.Fatalf("result download: %d %q", resp.StatusCode, body.String())
	}

	var list []jobView
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("job list has %d entries", len(list))
	}

	var stats statsView
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.Scheduler.Completed != 3 || stats.Scheduler.Submitted != 3 {
		t.Fatalf("scheduler stats %+v", stats.Scheduler)
	}
	if stats.Scheduler.PeakRunning > 2 {
		t.Fatalf("admission bound violated: %+v", stats.Scheduler)
	}
	if stats.Manager.TotalSupersteps == 0 {
		t.Fatalf("manager stats %+v", stats.Manager)
	}
	if len(stats.Cluster.Nodes) != 2 {
		t.Fatalf("cluster stats %+v", stats.Cluster)
	}
}

// TestServeCancel cancels a long pagerank over the API.
func TestServeCancel(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var v jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm:  "pagerank",
		Input:      "/in/web",
		Iterations: 100000,
	}, http.StatusAccepted, &v)

	// Let it get going, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
		if cur.State == "running" && cur.RunTimeMS > 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, nil)

	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
		if cur.State == "canceled" {
			break
		}
		if cur.State == "done" || cur.State == "failed" {
			t.Fatalf("canceled job ended %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeValidation covers the API error paths.
func TestServeValidation(t *testing.T) {
	ts, _ := newTestServer(t)

	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "nope", Input: "/in/x"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "pagerank"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "pagerank", Input: "/in/x", Join: "sideways"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs/999", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/files/no/such", nil, http.StatusNotFound, nil)

	// Unknown algorithm must not leak a job into the list.
	var list []jobView
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list) != 0 {
		t.Fatalf("rejected submissions leaked into the job list: %+v", list)
	}
}

// TestServeQueueFull checks the 503 surface when the queue bound trips.
func TestServeQueueFull(t *testing.T) {
	rt, err := core.NewRuntime(core.Options{BaseDir: t.TempDir(), Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 1, MaxQueuedJobs: 1})
	ts := httptest.NewServer(newServer(m))
	defer func() { ts.Close(); m.Close(); rt.Close() }()
	uploadGraph(t, ts.URL, "/in/web")

	// Saturate: one long job runs, one waits, the third must bounce.
	// The first submission may leave the queue as soon as it is
	// admitted, so saturation needs the runner slot provably occupied.
	var first jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "pagerank", Input: "/in/web", Iterations: 100000,
	}, http.StatusAccepted, &first)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, first.ID), nil, http.StatusOK, &cur)
		if cur.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never admitted: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "pagerank", Input: "/in/web", Iterations: 100000,
	}, http.StatusAccepted, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "cc", Input: "/in/web",
	}, http.StatusServiceUnavailable, nil)

	// Drain so Cleanup does not hang on running jobs.
	for _, h := range m.Jobs() {
		h.Cancel()
	}
}

// dumpValues parses a downloaded dump into vid -> value-string.
func dumpValues(t *testing.T, baseURL, path string) map[uint64]string {
	t.Helper()
	resp, err := http.Get(baseURL + "/files" + path)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dump download: %d", resp.StatusCode)
	}
	out := map[uint64]string{}
	for _, line := range strings.Split(strings.TrimSpace(body.String()), "\n") {
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) < 2 {
			t.Fatalf("bad dump line %q", line)
		}
		var vid uint64
		fmt.Sscanf(fields[0], "%d", &vid)
		out[vid] = fields[1]
	}
	return out
}

// TestServeQueryEndpoints exercises the always-on query API over HTTP:
// point reads, top-k and k-hop answers of a finished job must match its
// dumped output, with the documented error codes on every bad input.
func TestServeQueryEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var v jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm:  "pagerank",
		Input:      "/in/web",
		Output:     "/out/pr",
		Iterations: 3,
	}, http.StatusAccepted, &v)
	waitJobState(t, ts.URL, v.ID, "done")
	dump := dumpValues(t, ts.URL, "/out/pr")

	// Point reads match the dump byte-for-byte.
	for _, vid := range []uint64{1, 2, 60, 119} {
		var vr core.VertexQueryResult
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/%d", ts.URL, v.ID, vid),
			nil, http.StatusOK, &vr)
		if !vr.Found || vr.Value != dump[vid] {
			t.Fatalf("vertex %d: %+v, dump has %q", vid, vr, dump[vid])
		}
		if !strings.HasPrefix(vr.Line, fmt.Sprintf("%d\t%s", vid, dump[vid])) {
			t.Fatalf("vertex %d line %q does not match its dump row", vid, vr.Line)
		}
	}

	// Top-k: first entry is the dump's maximum value.
	var tk struct {
		K       int              `json:"k"`
		Entries []core.TopKEntry `json:"entries"`
	}
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/topk?by=value&k=5", ts.URL, v.ID),
		nil, http.StatusOK, &tk)
	if tk.K != 5 || len(tk.Entries) != 5 {
		t.Fatalf("top-k payload %+v", tk)
	}
	var maxVid uint64
	maxScore := -1.0
	for vid, val := range dump {
		var s float64
		fmt.Sscanf(val, "%g", &s)
		if s > maxScore || (s == maxScore && vid < maxVid) {
			maxScore, maxVid = s, vid
		}
	}
	if tk.Entries[0].Vid != maxVid {
		t.Fatalf("top-k[0] is vertex %d, dump maximum is %d", tk.Entries[0].Vid, maxVid)
	}

	// K-hop expansion from a real vertex.
	var kh core.KHopResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/neighbors/1?hops=2", ts.URL, v.ID),
		nil, http.StatusOK, &kh)
	if !kh.Found || kh.Hops != 2 || kh.Total == 0 || len(kh.Layers) == 0 {
		t.Fatalf("k-hop payload %+v", kh)
	}

	// Error surfaces.
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/999999999", ts.URL, v.ID), nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/abc", ts.URL, v.ID), nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/topk?by=rank", ts.URL, v.ID), nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/topk?k=0", ts.URL, v.ID), nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/neighbors/1?hops=x", ts.URL, v.ID), nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/bogus", ts.URL, v.ID), nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs/999/vertices/1", nil, http.StatusNotFound, nil)

	// A running job has no queryable result yet: 409.
	var long jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "pagerank", Input: "/in/web", Iterations: 100000,
	}, http.StatusAccepted, &long)
	waitJobState(t, ts.URL, long.ID, "running")
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/1", ts.URL, long.ID), nil, http.StatusConflict, nil)
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, long.ID), nil, http.StatusOK, nil)

	// Re-submission under the same name: the finished job's endpoint
	// serves the NEW run's version once it completes.
	var v2 jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm:  "pagerank",
		Input:      "/in/web",
		Output:     "/out/pr2",
		Iterations: 6,
	}, http.StatusAccepted, &v2)
	waitJobState(t, ts.URL, v2.ID, "done")
	dump2 := dumpValues(t, ts.URL, "/out/pr2")
	var vr2 core.VertexQueryResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/1", ts.URL, v2.ID), nil, http.StatusOK, &vr2)
	if vr2.Value != dump2[1] {
		t.Fatalf("re-submitted job served %q, its dump has %q", vr2.Value, dump2[1])
	}
	// The superseded run's endpoint now reports its version retired.
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/1", ts.URL, v.ID), nil, http.StatusNotFound, nil)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.JobManager) {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{
		BaseDir: t.TempDir(),
		Nodes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 2})
	ts := httptest.NewServer(newServer(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		rt.Close()
	})
	return ts, m
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func uploadGraph(t *testing.T, baseURL, path string) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, graphgen.Webmap(120, 3, 31)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, baseURL+"/files"+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload returned %d", resp.StatusCode)
	}
}

// TestServeSubmitAndPoll drives the full HTTP flow: upload a graph,
// submit concurrent jobs, poll until done, download the result, and
// read scheduler metrics.
func TestServeSubmitAndPoll(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var views []jobView
	for i := 0; i < 3; i++ {
		var v jobView
		doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
			Algorithm: "cc",
			Name:      fmt.Sprintf("serve-cc-%d", i),
			Input:     "/in/web",
			Output:    fmt.Sprintf("/out/cc-%d", i),
		}, http.StatusAccepted, &v)
		if v.ID == 0 || v.State == "" {
			t.Fatalf("submission view %+v", v)
		}
		views = append(views, v)
	}

	deadline := time.Now().Add(60 * time.Second)
	for _, v := range views {
		for {
			var cur jobView
			doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
			if cur.State == "done" {
				if cur.Supersteps == 0 || cur.Vertices != 120 {
					t.Fatalf("done job view %+v", cur)
				}
				break
			}
			if cur.State == "failed" || cur.State == "canceled" {
				t.Fatalf("job %d ended %s: %s", v.ID, cur.State, cur.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d stuck in %s", v.ID, cur.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Results must be retrievable through the files endpoint.
	resp, err := http.Get(ts.URL + "/files/out/cc-0")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "\t") {
		t.Fatalf("result download: %d %q", resp.StatusCode, body.String())
	}

	var list []jobView
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("job list has %d entries", len(list))
	}

	var stats statsView
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.Scheduler.Completed != 3 || stats.Scheduler.Submitted != 3 {
		t.Fatalf("scheduler stats %+v", stats.Scheduler)
	}
	if stats.Scheduler.PeakRunning > 2 {
		t.Fatalf("admission bound violated: %+v", stats.Scheduler)
	}
	if stats.Manager.TotalSupersteps == 0 {
		t.Fatalf("manager stats %+v", stats.Manager)
	}
	if len(stats.Cluster.Nodes) != 2 {
		t.Fatalf("cluster stats %+v", stats.Cluster)
	}
}

// TestServeCancel cancels a long pagerank over the API.
func TestServeCancel(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var v jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm:  "pagerank",
		Input:      "/in/web",
		Iterations: 100000,
	}, http.StatusAccepted, &v)

	// Let it get going, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
		if cur.State == "running" && cur.RunTimeMS > 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, nil)

	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil, http.StatusOK, &cur)
		if cur.State == "canceled" {
			break
		}
		if cur.State == "done" || cur.State == "failed" {
			t.Fatalf("canceled job ended %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeValidation covers the API error paths.
func TestServeValidation(t *testing.T) {
	ts, _ := newTestServer(t)

	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "nope", Input: "/in/x"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "pagerank"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{Algorithm: "pagerank", Input: "/in/x", Join: "sideways"},
		http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/jobs/999", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/files/no/such", nil, http.StatusNotFound, nil)

	// Unknown algorithm must not leak a job into the list.
	var list []jobView
	doJSON(t, http.MethodGet, ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list) != 0 {
		t.Fatalf("rejected submissions leaked into the job list: %+v", list)
	}
}

// TestServeQueueFull checks the 503 surface when the queue bound trips.
func TestServeQueueFull(t *testing.T) {
	rt, err := core.NewRuntime(core.Options{BaseDir: t.TempDir(), Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 1, MaxQueuedJobs: 1})
	ts := httptest.NewServer(newServer(m))
	defer func() { ts.Close(); m.Close(); rt.Close() }()
	uploadGraph(t, ts.URL, "/in/web")

	// Saturate: one long job runs, one waits, the third must bounce.
	// The first submission may leave the queue as soon as it is
	// admitted, so saturation needs the runner slot provably occupied.
	var first jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "pagerank", Input: "/in/web", Iterations: 100000,
	}, http.StatusAccepted, &first)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", ts.URL, first.ID), nil, http.StatusOK, &cur)
		if cur.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never admitted: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "pagerank", Input: "/in/web", Iterations: 100000,
	}, http.StatusAccepted, nil)
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "cc", Input: "/in/web",
	}, http.StatusServiceUnavailable, nil)

	// Drain so Cleanup does not hang on running jobs.
	for _, h := range m.Jobs() {
		h.Cancel()
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pregelix/internal/delta"

	"pregelix/internal/core"
	"pregelix/internal/hyracks"
	"pregelix/internal/tuple"
	"pregelix/pregel"
	"pregelix/pregel/algorithms"
)

// serveMain runs the multi-tenant serving mode: one shared simulated
// cluster, an admission-controlled JobManager, and an HTTP API for
// concurrent job submission, status polling, cancellation, file
// transfer and cluster metrics.
func serveMain(args []string) {
	fs := flag.NewFlagSet("pregelix serve", flag.ExitOnError)
	var (
		listen        = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		nodes         = fs.Int("nodes", 4, "simulated cluster size")
		ram           = fs.Int64("ram", 0, "per-machine RAM budget in bytes (0 = unlimited)")
		partitions    = fs.Int("partitions-per-node", 1, "graph partitions per machine")
		maxConcurrent = fs.Int("max-concurrent", 2, "jobs allowed in flight at once")
		maxQueued     = fs.Int("max-queued", 64, "queued-job bound (0 = unlimited)")
		baseDir       = fs.String("dir", "", "cluster state directory (default: a temp dir)")
		workers       = fs.Int("workers", 0, "cluster mode: number of pregelix worker processes to wait for (0 = single-process simulation)")
		clusterListen = fs.String("cluster-listen", "127.0.0.1:9090", "cluster mode: control-plane address workers register at")
		replaceWait   = fs.Duration("replace-wait", 0, "cluster mode: how long failure recovery waits for a standby worker before redistributing the dead worker's nodes over survivors")
		compress      = fs.String("compress", "auto", "frame compression for checkpoint images: off, flate, or auto (cluster mode: set per worker with `pregelix worker -compress`)")
		stateDir      = fs.String("state-dir", "", "cluster mode: durable coordinator state directory (checkpoint store, sealed-version catalog, job registry, lease); a restarted controller pointed here resumes where the dead one stopped")
		standbyCC     = fs.Bool("standby-cc", false, "cluster mode: start as a warm standby controller — wait for the coordinator lease in -state-dir to lapse, then take over")
		leaseInterval = fs.Duration("lease-interval", 2*time.Second, "cluster mode: coordinator lease renewal interval (a standby takes over after 3 missed renewals)")
		adaptive      = fs.Bool("adaptive", false, "cluster mode: enable the runtime-stats feedback loop — per-superstep join replanning, hot-partition splitting and straggler relief (event log under /stats)")
	)
	fs.Parse(args)

	mode, err := tuple.ParseCompressMode(*compress)
	if err != nil {
		fatal(err)
	}

	if *workers > 0 {
		// Cluster mode: machines come from the registered workers, jobs
		// run one at a time across the whole cluster, and files live in
		// controller memory — flags that configure the in-process
		// simulation have no effect.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "nodes", "dir", "max-concurrent":
				fmt.Fprintf(os.Stderr, "pregelix serve: -%s is ignored in cluster mode\n", f.Name)
			case "compress":
				// Workers own their bulk byte streams; the controller has none.
				fmt.Fprintf(os.Stderr, "pregelix serve: -compress is ignored in cluster mode (set it per worker: pregelix worker -compress)\n")
			}
		})
		if *standbyCC && *stateDir == "" {
			fatal(errors.New("pregelix serve: -standby-cc requires -state-dir (the lease lives there)"))
		}
		serveCluster(clusterOptions{
			listen:        *listen,
			workers:       *workers,
			partitions:    *partitions,
			ram:           *ram,
			clusterListen: *clusterListen,
			maxQueued:     *maxQueued,
			replaceWait:   *replaceWait,
			stateDir:      *stateDir,
			standby:       *standbyCC,
			leaseInterval: *leaseInterval,
			adaptive:      *adaptive,
		})
		return
	}
	if *stateDir != "" || *standbyCC {
		fatal(errors.New("pregelix serve: -state-dir and -standby-cc require cluster mode (-workers N)"))
	}
	if *adaptive {
		fatal(errors.New("pregelix serve: -adaptive requires cluster mode (-workers N); the single-process runtime replans per superstep already"))
	}

	dir := *baseDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "pregelix-serve-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	rt, err := core.NewRuntime(core.Options{
		BaseDir:           dir,
		Nodes:             *nodes,
		PartitionsPerNode: *partitions,
		NodeConfig:        hyracks.NodeConfig{RAMBytes: *ram},
		Compress:          mode,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	m := core.NewJobManager(rt, core.JobManagerOptions{
		MaxConcurrentJobs: *maxConcurrent,
		MaxQueuedJobs:     *maxQueued,
	})
	srv := &http.Server{Addr: *listen, Handler: newServer(m)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "pregelix serve: draining")
		m.Close()
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "pregelix serve: %d machines, %d concurrent jobs, listening on %s\n",
		*nodes, *maxConcurrent, *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// server is the HTTP API over one shared JobManager. It is separate
// from serveMain so tests can drive it through httptest.
type server struct {
	m   *core.JobManager
	mux *http.ServeMux

	// dmu guards the per-job streaming-ingest state: the submission
	// request kept for rebuilding the program on each delta refresh, and
	// the mutation tracker (journal + background refresher).
	dmu    sync.Mutex
	reqs   map[int64]jobRequest
	deltas map[int64]*deltaTracker
}

func newServer(m *core.JobManager) *server {
	s := &server{
		m:      m,
		mux:    http.NewServeMux(),
		reqs:   make(map[int64]jobRequest),
		deltas: make(map[int64]*deltaTracker),
	}
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/files/", s.handleFiles)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// jobRequest is the POST /jobs submission body.
type jobRequest struct {
	// Algorithm is a built-in algorithm name (same set as the CLI).
	Algorithm string `json:"algorithm"`
	// Name is an optional client label (default: the algorithm name).
	Name string `json:"name"`
	// Input is the DFS path of the graph (uploaded via PUT /files/...).
	Input string `json:"input"`
	// Output is the DFS path to dump results to ("" = no dump).
	Output string `json:"output"`
	// Source is the source vertex for sssp/reachability/bfs. A pointer
	// distinguishes "absent" (default 1) from an explicit vertex 0.
	Source *uint64 `json:"source"`
	// Iterations configures pagerank/pathmerge rounds.
	Iterations int `json:"iterations"`
	// Join/GroupBy/Connector/Storage are the plan hints of Section 5.3
	// (same values as the CLI flags); empty = per-algorithm default.
	Join      string `json:"join"`
	GroupBy   string `json:"groupby"`
	Connector string `json:"connector"`
	Storage   string `json:"storage"`
	// CheckpointEvery snapshots the Vertex and Msg relations every N
	// supersteps (Section 5.5); 0 disables checkpointing. In cluster
	// mode this is what makes a job survive a worker crash: recovery
	// rewinds to the last committed checkpoint instead of failing.
	CheckpointEvery int `json:"checkpointEvery"`
	// Epsilon is the residual threshold for deltapagerank (0 = default).
	Epsilon float64 `json:"epsilon"`
	// K is the core order for kcore (0 = default 3).
	K int `json:"k"`
}

// jobView is the status representation returned by the job endpoints.
type jobView struct {
	ID          int64   `json:"id"`
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Error       string  `json:"error,omitempty"`
	OperatorMem int64   `json:"operatorMemBytes,omitempty"`
	QueueWaitMS float64 `json:"queueWaitMs"`
	RunTimeMS   float64 `json:"runTimeMs"`
	Supersteps  int64   `json:"supersteps,omitempty"`
	Messages    int64   `json:"messages,omitempty"`
	Vertices    int64   `json:"vertices,omitempty"`
	// Checkpoints/Recoveries report the job's fault-tolerance activity:
	// committed checkpoints and completed checkpoint-rollback recoveries
	// (cluster mode reports supersteps live while the job runs).
	Checkpoints int `json:"checkpoints,omitempty"`
	Recoveries  int `json:"recoveries,omitempty"`
	// Rebalances counts elastic topology changes (workers joining or
	// draining) the job was carried across without losing a superstep
	// (cluster mode only).
	Rebalances int `json:"rebalances,omitempty"`
	// NetworkBytes counts the payload frame bytes the job's shuffle
	// connectors carried (process-local streams included);
	// NetworkWireBytes counts what actually hit the network sockets
	// (post-compression, headers included — zero on in-process
	// transports) and NetworkWireRawBytes what that same socket traffic
	// would have cost uncompressed. CompressionRatio is raw over wire,
	// e.g. 3.1 means frame compression cut the wire bytes 3.1x; it is
	// 1.0 under -compress=off.
	NetworkBytes        int64   `json:"networkBytes,omitempty"`
	NetworkWireBytes    int64   `json:"networkWireBytes,omitempty"`
	NetworkWireRawBytes int64   `json:"networkWireRawBytes,omitempty"`
	CompressionRatio    float64 `json:"compressionRatio,omitempty"`
	// Version is the sealed result version queries currently serve from;
	// it advances with every completed delta refresh. DeltaSeq is the
	// last journaled mutation sequence folded into that version,
	// Refreshing reports an in-flight delta run, and DeltaError carries
	// the last failed refresh (cleared by the next success).
	Version    string `json:"version,omitempty"`
	DeltaSeq   uint64 `json:"deltaSeq,omitempty"`
	Refreshing bool   `json:"refreshing,omitempty"`
	DeltaError string `json:"deltaError,omitempty"`
}

// fillNetwork sums a job's connector traffic into the view.
func (v *jobView) fillNetwork(stats *core.JobStats) {
	for _, ss := range stats.SuperstepStats {
		v.NetworkBytes += ss.NetworkBytes
		v.NetworkWireBytes += ss.NetworkWireBytes
		v.NetworkWireRawBytes += ss.NetworkWireRawBytes
	}
	if v.NetworkWireBytes > 0 {
		v.CompressionRatio = float64(v.NetworkWireRawBytes) / float64(v.NetworkWireBytes)
	}
}

func (s *server) view(h *core.JobHandle) jobView {
	st := h.Status()
	v := jobView{
		ID:          st.ID,
		Name:        h.Name(),
		State:       st.State.String(),
		Error:       st.Err,
		OperatorMem: st.OperatorMem,
		QueueWaitMS: float64(st.QueueWait) / float64(time.Millisecond),
		RunTimeMS:   float64(st.RunTime) / float64(time.Millisecond),
	}
	if stats, err := h.Result(); stats != nil {
		v.Supersteps = stats.Supersteps
		v.Messages = stats.TotalMessages
		v.Vertices = stats.FinalState.NumVertices
		v.Checkpoints = stats.Checkpoints
		v.Recoveries = stats.Recoveries
		v.fillNetwork(stats)
		v.Version = h.Name()
	} else if err != nil && v.Error == "" {
		v.Error = err.Error()
	}
	if d := s.delta(h.ID()); d != nil {
		v.Version, v.DeltaSeq, v.Refreshing, v.DeltaError = d.status()
	}
	return v
}

// delta returns the job's ingest tracker, nil if no mutations were ever
// posted against it.
func (s *server) delta(id int64) *deltaTracker {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.deltas[id]
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		out := []jobView{} // [] rather than null when no jobs exist
		for _, h := range s.m.Jobs() {
			out = append(out, s.view(h))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req jobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		job, err := buildServeJob(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// The job outlives the HTTP request, so it must not run under
		// the request context.
		h, err := s.m.Submit(context.Background(), job)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		// Keep the request so a later delta refresh can rebuild the same
		// program against the sealed result.
		s.dmu.Lock()
		s.reqs[h.ID()] = req
		s.dmu.Unlock()
		writeJSON(w, http.StatusAccepted, s.view(h))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST /jobs")
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/jobs/"), "/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", idStr)
		return
	}
	h := s.m.Job(id)
	if h == nil {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if sub == "mutations" {
		s.handleMutations(w, r, h)
		return
	}
	if sub != "" {
		s.handleJobQuery(w, r, h, sub)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.view(h))
	case http.MethodDelete:
		h.Cancel()
		writeJSON(w, http.StatusOK, s.view(h))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE /jobs/{id}")
	}
}

// handleJobQuery serves the always-on query endpoints of one job:
//
//	GET /jobs/{id}/vertices/{vid}        — point read
//	GET /jobs/{id}/topk?by=value&k=N     — global top-k by vertex value
//	GET /jobs/{id}/neighbors/{vid}?hops=K — k-hop neighborhood expansion
//
// Answers come straight from the job's retained partition B-trees (no
// dump read); a query row's "line" field is byte-identical to the row
// the dump would have written. Only the latest successful run of a job
// name is queryable — a re-submission seals a new result version and
// retires this one once in-flight queries drain.
func (s *server) handleJobQuery(w http.ResponseWriter, r *http.Request, h *core.JobHandle, sub string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /jobs/{id}/{vertices|topk|neighbors}")
		return
	}
	if stats, err := h.Result(); stats == nil || err != nil {
		httpError(w, http.StatusConflict, "job %d has no queryable result (state %s)", h.ID(), h.State())
		return
	}
	// Delta refreshes advance the sealed version under the same job id;
	// always serve from the latest seal.
	version := h.Name()
	if d := s.delta(h.ID()); d != nil {
		version = d.currentVersion()
	}
	serveQuery(w, r, sub, storeQuerier{s.m.Runtime().Queries(), version})
}

// handleMutations is the streaming-ingest endpoint: POST NDJSON
// mutation lines against a completed job. The batch is journaled
// durably (202 + its sequence number), then a background refresher
// clones the sealed partitions, applies every outstanding batch and
// runs delta supersteps until convergence; queries keep answering from
// the pre-delta version until the refreshed result seals. 409 until the
// base job has a sealed result to mutate.
func (s *server) handleMutations(w http.ResponseWriter, r *http.Request, h *core.JobHandle) {
	if stats, err := h.Result(); stats == nil || err != nil {
		httpError(w, http.StatusConflict, "job %d has no sealed result to mutate (state %s)", h.ID(), h.State())
		return
	}
	s.dmu.Lock()
	d := s.deltas[h.ID()]
	if d == nil {
		req, ok := s.reqs[h.ID()]
		if !ok {
			s.dmu.Unlock()
			httpError(w, http.StatusConflict, "job %d predates this server instance", h.ID())
			return
		}
		store := core.DFSStore(s.m.Runtime().DFS)
		refresh := func(fromVersion, name string, seq uint64, muts []delta.Mutation) error {
			job, err := buildServeJob(&req)
			if err != nil {
				return err
			}
			dh, err := s.m.SubmitDelta(context.Background(), job, fromVersion, seq, muts)
			if err != nil {
				return err
			}
			_, err = dh.Wait(context.Background())
			return err
		}
		var err error
		d, err = newDeltaTracker(store, fmt.Sprintf("/delta/j%d", h.ID()), h.Name(), refresh)
		if err != nil {
			s.dmu.Unlock()
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.deltas[h.ID()] = d
	}
	s.dmu.Unlock()
	serveMutations(w, r, d)
}

// querier abstracts the two query backends the HTTP layer serves from:
// the single-process runtime's QueryStore and the cluster coordinator's
// fan-out path. The version is bound in by the caller.
type querier interface {
	Point(vid uint64) (core.VertexQueryResult, error)
	TopK(k int) ([]core.TopKEntry, error)
	KHop(source uint64, hops int) (*core.KHopResult, error)
}

// storeQuerier serves one result version from the single-process
// runtime's QueryStore.
type storeQuerier struct {
	s       *core.QueryStore
	version string
}

func (q storeQuerier) Point(vid uint64) (core.VertexQueryResult, error) {
	out, err := q.s.Point(q.version, []uint64{vid})
	if err != nil {
		return core.VertexQueryResult{}, err
	}
	return out[0], nil
}

func (q storeQuerier) TopK(k int) ([]core.TopKEntry, error) {
	return q.s.TopK(q.version, k)
}

func (q storeQuerier) KHop(source uint64, hops int) (*core.KHopResult, error) {
	return q.s.KHop(q.version, source, hops)
}

// serveQuery routes one query sub-path against a version-bound querier.
func serveQuery(w http.ResponseWriter, r *http.Request, sub string, q querier) {
	writeQueryErr := func(err error) {
		if errors.Is(err, core.ErrNoResult) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	}
	switch {
	case strings.HasPrefix(sub, "vertices/"):
		vid, err := strconv.ParseUint(strings.TrimPrefix(sub, "vertices/"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad vertex id %q", strings.TrimPrefix(sub, "vertices/"))
			return
		}
		res, err := q.Point(vid)
		if err != nil {
			writeQueryErr(err)
			return
		}
		if !res.Found {
			writeJSON(w, http.StatusNotFound, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case sub == "topk":
		if by := r.URL.Query().Get("by"); by != "" && by != "value" {
			httpError(w, http.StatusBadRequest, "bad top-k order %q (only by=value is supported)", by)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			n, err := strconv.Atoi(ks)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, "bad k %q", ks)
				return
			}
			k = n
		}
		entries, err := q.TopK(k)
		if err != nil {
			writeQueryErr(err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"k": k, "entries": entries})
	case strings.HasPrefix(sub, "neighbors/"):
		vid, err := strconv.ParseUint(strings.TrimPrefix(sub, "neighbors/"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad vertex id %q", strings.TrimPrefix(sub, "neighbors/"))
			return
		}
		hops := 1
		if hs := r.URL.Query().Get("hops"); hs != "" {
			n, err := strconv.Atoi(hs)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, "bad hops %q", hs)
				return
			}
			hops = n
		}
		res, err := q.KHop(vid, hops)
		if err != nil {
			writeQueryErr(err)
			return
		}
		if !res.Found {
			writeJSON(w, http.StatusNotFound, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		httpError(w, http.StatusNotFound, "no such job endpoint %q", sub)
	}
}

// handleFiles moves graph/result files in and out of the cluster DFS.
func (s *server) handleFiles(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/files")
	if path == "" || path == "/" {
		httpError(w, http.StatusBadRequest, "missing DFS path")
		return
	}
	dfs := s.m.Runtime().DFS
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		wr, err := dfs.Create(path)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if _, err := io.Copy(wr, r.Body); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if err := wr.Close(); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"path": path})
	case http.MethodGet:
		data, err := dfs.ReadFile(path)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Write(data)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET, PUT or POST /files/{path}")
	}
}

// statsView is the GET /stats payload: scheduler counters plus the
// statistics collector's per-machine snapshot.
type statsView struct {
	Scheduler hyracks.SchedulerStats `json:"scheduler"`
	Queued    int                    `json:"queued"`
	Running   int                    `json:"running"`
	Manager   struct {
		TotalSupersteps int64   `json:"totalSupersteps"`
		TotalMessages   int64   `json:"totalMessages"`
		TotalRunTimeMS  float64 `json:"totalRunTimeMs"`
	} `json:"manager"`
	// Network aggregates connector traffic over all finished jobs:
	// payload frame bytes vs post-compression socket bytes (wire is zero
	// when every stream stayed in process).
	Network networkView       `json:"network"`
	Cluster core.ClusterStats `json:"cluster"`
}

// networkView is the payload-vs-wire traffic summary shared by both
// serve modes' /stats payloads. CompressionRatio compares the socket
// traffic against what it would have cost uncompressed (1.0 under
// -compress=off); payload bytes also count process-local streams.
type networkView struct {
	PayloadBytes     int64   `json:"payloadBytes"`
	WireBytes        int64   `json:"wireBytes"`
	WireRawBytes     int64   `json:"wireRawBytes"`
	CompressionRatio float64 `json:"compressionRatio,omitempty"`
}

func (n *networkView) add(stats *core.JobStats) {
	if stats == nil {
		return
	}
	for _, ss := range stats.SuperstepStats {
		n.PayloadBytes += ss.NetworkBytes
		n.WireBytes += ss.NetworkWireBytes
		n.WireRawBytes += ss.NetworkWireRawBytes
	}
}

func (n *networkView) finish() {
	if n.WireBytes > 0 {
		n.CompressionRatio = float64(n.WireRawBytes) / float64(n.WireBytes)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	ms := s.m.Stats()
	out := statsView{
		Scheduler: ms.Scheduler,
		Queued:    ms.QueuedNow,
		Running:   ms.RunningNow,
		Cluster:   s.m.Runtime().CollectStats(),
	}
	out.Manager.TotalSupersteps = ms.TotalSupersteps
	out.Manager.TotalMessages = ms.TotalMessages
	out.Manager.TotalRunTimeMS = float64(ms.TotalRunTime) / float64(time.Millisecond)
	for _, h := range s.m.Jobs() {
		if stats, _ := h.Result(); stats != nil {
			out.Network.add(stats)
		}
	}
	out.Network.finish()
	writeJSON(w, http.StatusOK, out)
}

// buildServeJob maps a submission request onto a built-in algorithm job
// with the requested plan hints.
func buildServeJob(req *jobRequest) (*pregel.Job, error) {
	iterations := req.Iterations
	if iterations <= 0 {
		iterations = 10
	}
	source := uint64(1)
	if req.Source != nil {
		source = *req.Source
	}
	var job *pregel.Job
	switch req.Algorithm {
	case "deltapagerank":
		job = algorithms.NewDeltaPageRankJob("deltapagerank", "", "", req.Epsilon)
	case "kcore":
		k := req.K
		if k <= 0 {
			k = 3
		}
		job = algorithms.NewKCoreJob("kcore", "", "", k)
	default:
		job = buildJob(req.Algorithm, source, iterations)
	}
	if job == nil {
		return nil, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	if req.Input == "" {
		return nil, fmt.Errorf("input DFS path is required (upload via PUT /files/...)")
	}
	if req.Name != "" {
		job.Name = req.Name
	}
	job.InputPath = req.Input
	job.OutputPath = req.Output
	if err := applyHintValue("join", req.Join, map[string]func(){
		"fullouter": func() { job.Join = pregel.FullOuterJoin },
		"leftouter": func() { job.Join = pregel.LeftOuterJoin },
	}); err != nil {
		return nil, err
	}
	if err := applyHintValue("groupby", req.GroupBy, map[string]func(){
		"sort":     func() { job.GroupBy = pregel.SortGroupBy },
		"hashsort": func() { job.GroupBy = pregel.HashSortGroupBy },
	}); err != nil {
		return nil, err
	}
	if err := applyHintValue("connector", req.Connector, map[string]func(){
		"merge":   func() { job.Connector = pregel.MergeConnector },
		"unmerge": func() { job.Connector = pregel.UnmergeConnector },
	}); err != nil {
		return nil, err
	}
	if err := applyHintValue("storage", req.Storage, map[string]func(){
		"btree": func() { job.Storage = pregel.BTreeStorage },
		"lsm":   func() { job.Storage = pregel.LSMStorage },
	}); err != nil {
		return nil, err
	}
	if req.CheckpointEvery < 0 {
		return nil, fmt.Errorf("checkpointEvery must be >= 0")
	}
	job.CheckpointEvery = req.CheckpointEvery
	return job, nil
}

func applyHintValue(kind, val string, actions map[string]func()) error {
	if val == "" {
		return nil
	}
	fn, ok := actions[val]
	if !ok {
		return fmt.Errorf("bad %s hint %q", kind, val)
	}
	fn()
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

package main

// Coordinator chaos at the process level: SIGKILL the `pregelix serve`
// controller mid-job and bring it back — either as a restart pointed at
// the same -state-dir or as a warm standby (-standby-cc) taking the
// lease over. The in-process variants live in
// internal/core/chaos_test.go; these cross real process boundaries,
// so the durable state dir (checkpoint DFS, catalog, job registry,
// lease) and the worker -rejoin loop are the only things connecting
// the old controller's world to the new one's.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
)

// queryVertexOK reads one vertex through the query API and requires a
// found answer.
func queryVertexOK(t *testing.T, base string, id int64, vid uint64) core.VertexQueryResult {
	t.Helper()
	var res core.VertexQueryResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/%d", base, id, vid),
		nil, http.StatusOK, &res)
	if !res.Found {
		t.Fatalf("vertex %d not found in job %d's sealed result", vid, id)
	}
	return res
}

// TestCoordinatorRestartEndToEnd kills the coordinator process with the
// cluster mid-superstep and restarts it against the same -state-dir:
// the rejoining workers are re-adopted, the interrupted job resumes
// from its last committed checkpoint manifest, its output matches the
// failure-free run, and the pre-kill job's sealed result is still
// queryable through the new controller.
func TestCoordinatorRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning chaos test in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	stateDir := t.TempDir()
	serveArgs := []string{"-state-dir", stateDir, "-lease-interval", "300ms", "-replace-wait", "60s"}
	c := startProcClusterWorkers(t, ctx, 2,
		[]string{"-rejoin", "-rejoin-wait", "200ms"}, serveArgs...)

	g := graphgen.Webmap(30000, 5, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	putFile(t, c.base(), "/in/graph", graph.Bytes())

	submit := func(name, output string) int64 {
		return submitJob(t, c.base(), `{"algorithm":"pagerank","name":"`+name+`","input":"/in/graph","output":"`+output+`","iterations":8,"checkpointEvery":2}`)
	}

	// Failure-free baseline; its completion also seals a query version.
	cleanID := submit("pr-clean", "/out/clean")
	if st := waitJobDone(t, c.base(), cleanID, 180*time.Second); st.State != "done" {
		t.Fatalf("baseline job state %q (error %q)", st.State, st.Error)
	}
	cleanOut := getFile(t, c.base(), "/out/clean")
	pre := queryVertexOK(t, c.base(), cleanID, 1)

	// Chaos run: SIGKILL the coordinator once the superstep-2 checkpoint
	// is committed and superstep 3+ is in flight.
	chaosID := submit("pr-chaos", "/out/chaos")
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("job never reached superstep 3; cannot inject fault")
		}
		st := pollJob(t, c.base(), chaosID)
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job finished (state %q) before the fault was injected — enlarge the graph", st.State)
		}
		if st.Supersteps >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.killServe()

	// Restart against the same state dir (waits out the dead holder's
	// lease, then re-binds the same control-plane address so the
	// -rejoin workers find it).
	c.restartServe(serveArgs...)
	waitHealthy(t, c.base()+"/healthz")

	// The restored registry resumes the interrupted job on its own.
	st := waitJobDone(t, c.base(), chaosID, 180*time.Second)
	if st.State != "done" {
		t.Fatalf("resumed job state %q (error %q)", st.State, st.Error)
	}
	if st.Recoveries == 0 {
		t.Fatal("resumed job recorded no recovery — it re-ran from scratch instead of the checkpoint manifest")
	}
	compareRanks(t, cleanOut, getFile(t, c.base(), "/out/chaos"))

	// The pre-kill job survived the restart: registry state, sealed
	// query version (re-adopted from the rejoining workers) and dumped
	// output are all still served.
	if st := pollJob(t, c.base(), cleanID); st.State != "done" {
		t.Fatalf("pre-kill job state %q after restart, want done", st.State)
	}
	post := queryVertexOK(t, c.base(), cleanID, 1)
	if post.Value != pre.Value {
		t.Fatalf("vertex 1 changed across restart: %q vs %q", pre.Value, post.Value)
	}
	if got := getFile(t, c.base(), "/out/clean"); !bytes.Equal(got, cleanOut) {
		t.Fatal("pre-kill job's dumped output changed across restart")
	}
}

// TestStandbyTakeoverEndToEnd parks a warm standby controller
// (-standby-cc) on the same state dir, SIGKILLs the primary, and
// requires the standby to take the lease over, re-adopt the rejoining
// workers and the sealed query tier, and run new jobs.
func TestStandbyTakeoverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning chaos test in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	stateDir := t.TempDir()
	serveArgs := []string{"-state-dir", stateDir, "-lease-interval", "300ms", "-replace-wait", "60s"}
	c := startProcClusterWorkers(t, ctx, 2,
		[]string{"-rejoin", "-rejoin-wait", "200ms"}, serveArgs...)
	standby := c.startStandby(serveArgs...)

	g := graphgen.Webmap(5000, 4, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	putFile(t, c.base(), "/in/graph", graph.Bytes())

	id := submitJob(t, c.base(), `{"algorithm":"pagerank","name":"pr-ha","input":"/in/graph","output":"/out/ha","iterations":4}`)
	if st := waitJobDone(t, c.base(), id, 120*time.Second); st.State != "done" {
		t.Fatalf("job state %q (error %q)", st.State, st.Error)
	}
	out := getFile(t, c.base(), "/out/ha")
	pre := queryVertexOK(t, c.base(), id, 1)

	// Kill the primary without warning; the standby notices the lease
	// going stale (3 missed 300ms renewals), takes over, and prints its
	// startup line — which waitAddrs doubles as the takeover signal.
	c.killServe()
	standby.waitAddrs(t, 60*time.Second)
	c.adoptServe(standby)
	if !strings.Contains(standby.log.String(), "assuming coordinator role") {
		t.Fatalf("standby never logged its takeover:\n%s", standby.log.String())
	}
	waitHealthy(t, c.base()+"/healthz")

	// Everything the primary owned is served by the standby: registry,
	// files, and the sealed query version re-adopted from the workers.
	if st := pollJob(t, c.base(), id); st.State != "done" {
		t.Fatalf("job state %q after takeover, want done", st.State)
	}
	if got := getFile(t, c.base(), "/out/ha"); !bytes.Equal(got, out) {
		t.Fatal("dumped output changed across takeover")
	}
	post := queryVertexOK(t, c.base(), id, 1)
	if post.Value != pre.Value {
		t.Fatalf("vertex 1 changed across takeover: %q vs %q", pre.Value, post.Value)
	}

	// And the new controller schedules fresh work.
	id2 := submitJob(t, c.base(), `{"algorithm":"cc","name":"cc-ha","input":"/in/graph","output":"/out/cc"}`)
	if st := waitJobDone(t, c.base(), id2, 120*time.Second); st.State != "done" {
		t.Fatalf("post-takeover job state %q (error %q)", st.State, st.Error)
	}
}

package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"pregelix/internal/graphgen"
)

// TestTwoProcessEndToEnd is the real-wire smoke test: it starts
// `pregelix serve` in cluster mode plus one `pregelix worker` as
// separate OS processes on loopback (harness_test.go), runs a PageRank
// job through the HTTP API, and checks the dumped output. This is the
// acceptance path for the multi-process worker mode — the whole stack
// (control-plane handshake, wire-transport shuffle, distributed
// superstep loop, dump) crosses real process boundaries.
func TestTwoProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning e2e test in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	c := startProcCluster(t, ctx, 1)
	base := c.base()

	// Upload the graph.
	g := graphgen.Webmap(80, 3, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	putFile(t, base, "/in/graph", graph.Bytes())

	id := submitJob(t, base, `{"algorithm":"pagerank","name":"pr-e2e","input":"/in/graph","output":"/out/ranks","iterations":3}`)
	status := waitJobDone(t, base, id, 120*time.Second)
	if status.State != "done" {
		t.Fatalf("job state %q (error %q)", status.State, status.Error)
	}
	if status.Supersteps != 3 {
		t.Fatalf("ran %d supersteps, want 3", status.Supersteps)
	}
	if status.Vertices != int64(g.NumVertices()) {
		t.Fatalf("job saw %d vertices, graph has %d", status.Vertices, g.NumVertices())
	}

	// Fetch the output and check every vertex produced a rank.
	out := getFile(t, base, "/out/ranks")
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != g.NumVertices() {
		t.Fatalf("output has %d lines, want %d", len(lines), g.NumVertices())
	}
	for _, line := range lines {
		if !strings.Contains(line, "\t") {
			t.Fatalf("malformed output line %q", line)
		}
	}
}

// TestWorkerKillRecoveryEndToEnd is the fault-injection acceptance test
// for cluster-mode fault tolerance, entirely across real OS processes:
// it runs a checkpointed PageRank on a 2-worker cluster, runs it again
// and SIGKILLs one worker mid-superstep, attaches a replacement
// `pregelix worker`, and requires the recovered job to finish with
// results identical to the failure-free run (value-identical: PageRank
// float sums jitter in the last ulps with message order even between
// two healthy runs; the in-process suite asserts byte-identity on
// integer-valued connected components).
func TestWorkerKillRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning e2e test in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	c := startProcCluster(t, ctx, 2, "-replace-wait", "60s")
	base := c.base()

	// A graph big enough that supersteps take observable wall time, so
	// the kill lands mid-run.
	g := graphgen.Webmap(30000, 5, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	putFile(t, base, "/in/graph", graph.Bytes())

	submit := func(name, output string) int64 {
		return submitJob(t, base, `{"algorithm":"pagerank","name":"`+name+`","input":"/in/graph","output":"`+output+`","iterations":8,"checkpointEvery":2}`)
	}

	// Failure-free baseline run.
	cleanID := submit("pr-clean", "/out/clean")
	if st := waitJobDone(t, base, cleanID, 180*time.Second); st.State != "done" {
		t.Fatalf("baseline job state %q (error %q)", st.State, st.Error)
	}
	cleanOut := getFile(t, base, "/out/clean")

	// Faulty run: SIGKILL the second assembly worker once the
	// superstep-2 checkpoint is committed and superstep 3+ is in flight.
	victim := c.workerProcs[1]
	killID := submit("pr-kill", "/out/kill")
	killed := false
	killDeadline := time.Now().Add(120 * time.Second)
	for !killed {
		if time.Now().After(killDeadline) {
			t.Fatal("job never reached superstep 3; cannot inject fault")
		}
		st := pollJob(t, base, killID)
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job finished (state %q) before the fault was injected — enlarge the graph", st.State)
		}
		if st.Supersteps >= 3 {
			if err := victim.Process.Kill(); err != nil { // SIGKILL
				t.Fatal(err)
			}
			killed = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Attach the replacement worker the recovery is waiting for.
	c.startWorker("replacement")

	st := waitJobDone(t, base, killID, 180*time.Second)
	if st.State != "done" {
		t.Fatalf("killed job state %q (error %q)", st.State, st.Error)
	}
	if st.Recoveries == 0 {
		t.Fatal("job finished without recording a recovery")
	}
	if st.Checkpoints == 0 {
		t.Fatal("job finished without recording checkpoints")
	}
	killOut := getFile(t, base, "/out/kill")

	compareRanks(t, cleanOut, killOut)

	// The coordinator's event log must show the loss and the adoption.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"worker-lost", "replaced"} {
		if !strings.Contains(string(stats), kind) {
			t.Fatalf("/stats missing %q event: %s", kind, stats)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pregelix/internal/graphgen"
)

// TestTwoProcessEndToEnd is the real-wire smoke test: it builds the
// pregelix binary, starts `pregelix serve` in cluster mode plus one
// `pregelix worker` as separate OS processes on loopback, runs a
// PageRank job through the HTTP API, and checks the dumped output. This
// is the acceptance path for the multi-process worker mode — the whole
// stack (control-plane handshake, wire-transport shuffle, distributed
// superstep loop, dump) crosses real process boundaries.
func TestTwoProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning e2e test in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "pregelix")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pregelix: %v\n%s", err, out)
	}

	httpAddr := freeAddr(t)
	ccAddr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()

	var serveLog, workerLog bytes.Buffer
	serve := exec.CommandContext(ctx, bin, "serve",
		"-listen", httpAddr, "-workers", "1", "-cluster-listen", ccAddr)
	serve.Stderr = &serveLog
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
		if t.Failed() {
			t.Logf("serve log:\n%s", serveLog.String())
		}
	}()

	// Wait for the control plane to be listening before the worker dials.
	waitTCP(t, ccAddr)
	worker := exec.CommandContext(ctx, bin, "worker", "-cc", ccAddr, "-nodes", "2")
	worker.Stderr = &workerLog
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		worker.Process.Kill()
		worker.Wait()
		if t.Failed() {
			t.Logf("worker log:\n%s", workerLog.String())
		}
	}()

	base := "http://" + httpAddr
	waitHealthy(t, base+"/healthz")

	// Upload the graph.
	g := graphgen.Webmap(80, 3, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	put, err := http.NewRequest(http.MethodPut, base+"/files/in/graph", bytes.NewReader(graph.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// Submit PageRank and poll to completion.
	body := `{"algorithm":"pagerank","name":"pr-e2e","input":"/in/graph","output":"/out/ranks","iterations":3}`
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID int64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	var status struct {
		State      string `json:"state"`
		Error      string `json:"error"`
		Supersteps int64  `json:"supersteps"`
		Vertices   int64  `json:"vertices"`
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", status.State)
		}
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "done" || status.State == "failed" {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("job state %q (error %q)", status.State, status.Error)
	}
	if status.Supersteps != 3 {
		t.Fatalf("ran %d supersteps, want 3", status.Supersteps)
	}
	if status.Vertices != int64(g.NumVertices()) {
		t.Fatalf("job saw %d vertices, graph has %d", status.Vertices, g.NumVertices())
	}

	// Fetch the output and check every vertex produced a rank.
	resp, err = http.Get(base + "/files/out/ranks")
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != g.NumVertices() {
		t.Fatalf("output has %d lines, want %d", len(lines), g.NumVertices())
	}
	for _, line := range lines {
		if !strings.Contains(line, "\t") {
			t.Fatalf("malformed output line %q", line)
		}
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// freeAddr reserves a loopback port and releases it for the subprocess.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitTCP polls until something is listening at addr.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

// waitHealthy polls the health endpoint until the cluster reports ready.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("cluster never became healthy at %s", url)
}

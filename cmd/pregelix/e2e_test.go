package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pregelix/internal/graphgen"
)

// TestTwoProcessEndToEnd is the real-wire smoke test: it builds the
// pregelix binary, starts `pregelix serve` in cluster mode plus one
// `pregelix worker` as separate OS processes on loopback, runs a
// PageRank job through the HTTP API, and checks the dumped output. This
// is the acceptance path for the multi-process worker mode — the whole
// stack (control-plane handshake, wire-transport shuffle, distributed
// superstep loop, dump) crosses real process boundaries.
func TestTwoProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning e2e test in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "pregelix")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pregelix: %v\n%s", err, out)
	}

	httpAddr := freeAddr(t)
	ccAddr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()

	var serveLog, workerLog bytes.Buffer
	serve := exec.CommandContext(ctx, bin, "serve",
		"-listen", httpAddr, "-workers", "1", "-cluster-listen", ccAddr)
	serve.Stderr = &serveLog
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
		if t.Failed() {
			t.Logf("serve log:\n%s", serveLog.String())
		}
	}()

	// Wait for the control plane to be listening before the worker dials.
	waitTCP(t, ccAddr)
	worker := exec.CommandContext(ctx, bin, "worker", "-cc", ccAddr, "-nodes", "2")
	worker.Stderr = &workerLog
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		worker.Process.Kill()
		worker.Wait()
		if t.Failed() {
			t.Logf("worker log:\n%s", workerLog.String())
		}
	}()

	base := "http://" + httpAddr
	waitHealthy(t, base+"/healthz")

	// Upload the graph.
	g := graphgen.Webmap(80, 3, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	put, err := http.NewRequest(http.MethodPut, base+"/files/in/graph", bytes.NewReader(graph.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// Submit PageRank and poll to completion.
	body := `{"algorithm":"pagerank","name":"pr-e2e","input":"/in/graph","output":"/out/ranks","iterations":3}`
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID int64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	var status struct {
		State      string `json:"state"`
		Error      string `json:"error"`
		Supersteps int64  `json:"supersteps"`
		Vertices   int64  `json:"vertices"`
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", status.State)
		}
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "done" || status.State == "failed" {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("job state %q (error %q)", status.State, status.Error)
	}
	if status.Supersteps != 3 {
		t.Fatalf("ran %d supersteps, want 3", status.Supersteps)
	}
	if status.Vertices != int64(g.NumVertices()) {
		t.Fatalf("job saw %d vertices, graph has %d", status.Vertices, g.NumVertices())
	}

	// Fetch the output and check every vertex produced a rank.
	resp, err = http.Get(base + "/files/out/ranks")
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != g.NumVertices() {
		t.Fatalf("output has %d lines, want %d", len(lines), g.NumVertices())
	}
	for _, line := range lines {
		if !strings.Contains(line, "\t") {
			t.Fatalf("malformed output line %q", line)
		}
	}
}

// TestWorkerKillRecoveryEndToEnd is the fault-injection acceptance test
// for cluster-mode fault tolerance, entirely across real OS processes:
// it runs a checkpointed PageRank on a 2-worker cluster, runs it again
// and SIGKILLs one worker mid-superstep, attaches a replacement
// `pregelix worker`, and requires the recovered job to finish with
// results identical to the failure-free run (value-identical: PageRank
// float sums jitter in the last ulps with message order even between
// two healthy runs; the in-process suite asserts byte-identity on
// integer-valued connected components).
func TestWorkerKillRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning e2e test in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "pregelix")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pregelix: %v\n%s", err, out)
	}

	httpAddr := freeAddr(t)
	ccAddr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	var serveLog bytes.Buffer
	serve := exec.CommandContext(ctx, bin, "serve",
		"-listen", httpAddr, "-workers", "2", "-cluster-listen", ccAddr,
		"-replace-wait", "60s")
	serve.Stderr = &serveLog
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
		if t.Failed() {
			t.Logf("serve log:\n%s", serveLog.String())
		}
	}()
	waitTCP(t, ccAddr)

	startWorker := func(name string) *exec.Cmd {
		log := &bytes.Buffer{}
		w := exec.CommandContext(ctx, bin, "worker", "-cc", ccAddr, "-nodes", "2")
		w.Stderr = log
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			w.Process.Kill()
			w.Wait()
			if t.Failed() {
				t.Logf("%s log:\n%s", name, log.String())
			}
		})
		return w
	}
	startWorker("worker1")
	victim := startWorker("worker2")

	base := "http://" + httpAddr
	waitHealthy(t, base+"/healthz")

	// A graph big enough that supersteps take observable wall time, so
	// the kill lands mid-run.
	g := graphgen.Webmap(30000, 5, 7)
	var graph bytes.Buffer
	if _, err := graphgen.WriteText(&graph, g); err != nil {
		t.Fatal(err)
	}
	putFile(t, base, "/in/graph", graph.Bytes())

	submit := func(name, output string) int64 {
		body := fmt.Sprintf(`{"algorithm":"pagerank","name":%q,"input":"/in/graph","output":%q,"iterations":8,"checkpointEvery":2}`, name, output)
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var submitted struct {
			ID int64 `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&submitted)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
		}
		return submitted.ID
	}

	type jobStatus struct {
		State      string `json:"state"`
		Error      string `json:"error"`
		Supersteps int64  `json:"supersteps"`
		Recoveries int    `json:"recoveries"`
		Ckpts      int    `json:"checkpoints"`
	}
	poll := func(id int64) jobStatus {
		var st jobStatus
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	waitDone := func(id int64) jobStatus {
		deadline := time.Now().Add(180 * time.Second)
		for time.Now().Before(deadline) {
			st := poll(id)
			if st.State == "done" || st.State == "failed" {
				return st
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("job %d never finished", id)
		return jobStatus{}
	}

	// Failure-free baseline run.
	cleanID := submit("pr-clean", "/out/clean")
	if st := waitDone(cleanID); st.State != "done" {
		t.Fatalf("baseline job state %q (error %q)", st.State, st.Error)
	}
	cleanOut := getFile(t, base, "/out/clean")

	// Faulty run: SIGKILL worker2 once the superstep-2 checkpoint is
	// committed and superstep 3+ is in flight.
	killID := submit("pr-kill", "/out/kill")
	killed := false
	killDeadline := time.Now().Add(120 * time.Second)
	for !killed {
		if time.Now().After(killDeadline) {
			t.Fatal("job never reached superstep 3; cannot inject fault")
		}
		st := poll(killID)
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job finished (state %q) before the fault was injected — enlarge the graph", st.State)
		}
		if st.Supersteps >= 3 {
			if err := victim.Process.Kill(); err != nil { // SIGKILL
				t.Fatal(err)
			}
			killed = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Attach the replacement worker the recovery is waiting for.
	startWorker("worker3")

	st := waitDone(killID)
	if st.State != "done" {
		t.Fatalf("killed job state %q (error %q)", st.State, st.Error)
	}
	if st.Recoveries == 0 {
		t.Fatal("job finished without recording a recovery")
	}
	if st.Ckpts == 0 {
		t.Fatal("job finished without recording checkpoints")
	}
	killOut := getFile(t, base, "/out/kill")

	compareRanks(t, cleanOut, killOut)

	// The coordinator's event log must show the loss and the adoption.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"worker-lost", "replaced"} {
		if !strings.Contains(string(stats), kind) {
			t.Fatalf("/stats missing %q event: %s", kind, stats)
		}
	}
}

// putFile uploads a file through the serve API.
func putFile(t *testing.T, base, path string, data []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/files"+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", path, resp.StatusCode)
	}
}

// getFile downloads a file through the serve API.
func getFile(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/files" + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download %s: status %d", path, resp.StatusCode)
	}
	return data
}

// compareRanks requires two dumped PageRank outputs to agree per vertex
// within float tolerance.
func compareRanks(t *testing.T, a, b []byte) {
	t.Helper()
	parse := func(out []byte) map[string]float64 {
		m := map[string]float64{}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			fields := strings.SplitN(line, "\t", 3)
			if len(fields) < 2 {
				t.Fatalf("malformed output line %q", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad rank in %q: %v", line, err)
			}
			m[fields[0]] = v
		}
		return m
	}
	am, bm := parse(a), parse(b)
	if len(am) != len(bm) {
		t.Fatalf("vertex counts differ: %d vs %d", len(am), len(bm))
	}
	for id, av := range am {
		bv, ok := bm[id]
		if !ok {
			t.Fatalf("vertex %s missing from recovered output", id)
		}
		diff := math.Abs(av - bv)
		if tol := 1e-6 * math.Max(math.Abs(av), math.Abs(bv)); diff > tol && diff > 1e-300 {
			t.Fatalf("vertex %s: rank %v vs %v", id, av, bv)
		}
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// freeAddr reserves a loopback port and releases it for the subprocess.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitTCP polls until something is listening at addr.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

// waitHealthy polls the health endpoint until the cluster reports ready.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("cluster never became healthy at %s", url)
}

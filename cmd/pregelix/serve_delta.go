package main

import (
	"fmt"
	"net/http"
	"sync"

	"pregelix/internal/delta"
)

// deltaTracker is one job's streaming-ingest state, shared by both
// serve modes: the durable mutation journal, the currently sealed
// (queryable) version, and a serialized background refresher. Batches
// are acknowledged as soon as they are journaled; the refresher drains
// everything journaled past the applied marker into one delta run per
// round, so bursts coalesce and queries keep serving the old version
// until each run seals.
type deltaTracker struct {
	journal *delta.Journal
	// refresh runs one delta refresh: clone fromVersion, apply muts, run
	// delta supersteps, seal as name. Implemented by the JobManager in
	// single-process mode and the Coordinator in cluster mode.
	refresh func(fromVersion, name string, seq uint64, muts []delta.Mutation) error
	// onSeal, when set, is notified after each successful seal with the
	// new version name. Cluster mode persists it to the controller's job
	// registry so a restarted controller resumes the version chain.
	onSeal func(version string, seq uint64)

	mu         sync.Mutex
	version    string // currently sealed, queryable version
	applied    uint64 // last journal sequence folded into version
	refreshing bool
	dirty      bool // batches arrived while a refresh was in flight
	lastErr    string
}

func newDeltaTracker(store delta.Store, prefix, version string,
	refresh func(fromVersion, name string, seq uint64, muts []delta.Mutation) error) (*deltaTracker, error) {
	j, err := delta.OpenJournal(store, prefix)
	if err != nil {
		return nil, err
	}
	applied, err := j.Applied()
	if err != nil {
		return nil, err
	}
	return &deltaTracker{journal: j, refresh: refresh, version: version, applied: applied}, nil
}

// currentVersion is the version name queries should serve from.
func (d *deltaTracker) currentVersion() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// status reports the ingest fields of the job view.
func (d *deltaTracker) status() (version string, applied uint64, refreshing bool, lastErr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version, d.applied, d.refreshing, d.lastErr
}

// ingest journals one parsed batch and kicks the refresher. The batch
// is on stable storage when ingest returns its sequence number.
func (d *deltaTracker) ingest(muts []delta.Mutation) (uint64, error) {
	seq, err := d.journal.Append(muts)
	if err != nil {
		return 0, err
	}
	d.kick()
	return seq, nil
}

// kick starts the background refresher unless one is already running;
// a running refresher is flagged to re-drain before exiting, so no
// journaled batch is left behind.
func (d *deltaTracker) kick() {
	d.mu.Lock()
	if d.refreshing {
		d.dirty = true
		d.mu.Unlock()
		return
	}
	d.refreshing = true
	d.dirty = false
	d.mu.Unlock()
	go d.drain()
}

func (d *deltaTracker) drain() {
	for {
		d.drainOnce()
		d.mu.Lock()
		if !d.dirty {
			d.refreshing = false
			d.mu.Unlock()
			return
		}
		d.dirty = false
		d.mu.Unlock()
	}
}

// drainOnce folds every journaled batch past the applied marker into
// delta runs (one run per pass, re-reading the journal between passes)
// until the journal is fully applied or a refresh fails.
func (d *deltaTracker) drainOnce() {
	for {
		d.mu.Lock()
		applied, from := d.applied, d.version
		d.mu.Unlock()
		batches, err := d.journal.Replay(applied)
		if err != nil {
			d.fail(err)
			return
		}
		if len(batches) == 0 {
			return
		}
		var muts []delta.Mutation
		seq := applied
		for _, b := range batches {
			muts = append(muts, b.Muts...)
			seq = b.Seq
		}
		name := fmt.Sprintf("%s@d%d", from, seq)
		if err := d.refresh(from, name, seq, muts); err != nil {
			d.fail(err)
			return
		}
		// Swap the served version before persisting the marker: a query
		// racing the seal must never see the retired version name.
		d.mu.Lock()
		d.applied, d.version, d.lastErr = seq, name, ""
		d.mu.Unlock()
		if err := d.journal.SetApplied(seq); err != nil {
			d.fail(err)
			return
		}
		if d.onSeal != nil {
			d.onSeal(name, seq)
		}
	}
}

func (d *deltaTracker) fail(err error) {
	d.mu.Lock()
	d.lastErr = err.Error()
	d.mu.Unlock()
}

// serveMutations is the shared POST /jobs/{id}/mutations handler body:
// parse-or-400, journal-or-500, 202 with the assigned sequence.
func serveMutations(w http.ResponseWriter, r *http.Request, d *deltaTracker) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /jobs/{id}/mutations")
		return
	}
	muts, err := delta.ParseBatch(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	seq, err := d.ingest(muts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]uint64{"seq": seq})
}

package main

// Shared cluster test harness. Two layers:
//
//   - startTestCluster: an in-process coordinator plus worker goroutines
//     behind an httptest server, for API-surface tests that don't need
//     process isolation (scale_test.go).
//   - startProcCluster: real `pregelix serve` / `pregelix worker` OS
//     processes on loopback, for the e2e and chaos tests. The binary is
//     built once per test run. Every listener is OS-assigned: the serve
//     process binds :0 and the harness parses the real addresses from
//     its startup line, so parallel test runs can't collide on ports
//     (the old freeAddr reserve-then-release dance raced with anything
//     else binding on the machine).
//
// Plus the HTTP-level helpers (upload, download, submit, poll) every
// serve-mode test shares.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pregelix/internal/core"
	"pregelix/internal/graphgen"
)

// ---- binary build (once per test-process) ----

var (
	binOnce sync.Once
	binPath string
	binErr  error
	binDir  string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// buildBinary compiles the pregelix binary once and returns its path;
// every process-spawning test shares the artifact.
func buildBinary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "pregelix-bin-")
		if binErr != nil {
			return
		}
		binPath = filepath.Join(binDir, "pregelix")
		build := exec.Command("go", "build", "-o", binPath, ".")
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			binErr = fmt.Errorf("building pregelix: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// syncBuf is a process log buffer safe to read while the process writes.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serveAddrRe matches the cluster-mode startup line; serve prints the
// REAL bound addresses there, which is what makes -listen :0 usable.
var serveAddrRe = regexp.MustCompile(`waiting for \d+ workers on ([0-9.:]+), HTTP on ([0-9.:]+)`)

// procServe is one `pregelix serve` OS process.
type procServe struct {
	cmd  *exec.Cmd
	log  *syncBuf
	cc   string // control-plane address workers dial
	http string // HTTP API address
}

// waitAddrs blocks until the serve process prints its startup line and
// records the parsed control-plane and HTTP addresses. For a standby
// controller this doubles as "wait for takeover": the line only prints
// once the lease is acquired and the coordinator role assumed.
func (p *procServe) waitAddrs(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m := serveAddrRe.FindStringSubmatch(p.log.String()); m != nil {
			p.cc, p.http = m[1], m[2]
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("serve never printed its addresses; log:\n%s", p.log.String())
}

// procCluster drives a real multi-process cluster: one serve process
// (restartable — the chaos tests kill it) plus worker processes.
type procCluster struct {
	t       *testing.T
	ctx     context.Context
	bin     string
	workers int
	serve   *procServe
	// workerArgs is appended to every worker's command line (the chaos
	// tests start workers with -rejoin so they survive a controller
	// restart).
	workerArgs []string
	// workerProcs holds every spawned worker's handle in start order, so
	// fault-injection tests can SIGKILL a specific assembly worker.
	workerProcs []*exec.Cmd
}

// startServeProc spawns one serve process with the given extra args and
// registers kill-and-log-dump cleanup.
func (c *procCluster) startServeProc(name string, args ...string) *procServe {
	c.t.Helper()
	p := &procServe{log: &syncBuf{}}
	full := append([]string{"serve", "-workers", strconv.Itoa(c.workers)}, args...)
	p.cmd = exec.CommandContext(c.ctx, c.bin, full...)
	p.cmd.Stderr = p.log
	if err := p.cmd.Start(); err != nil {
		c.t.Fatal(err)
	}
	t := c.t
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		if t.Failed() {
			t.Logf("%s log:\n%s", name, p.log.String())
		}
	})
	return p
}

// startProcCluster builds the binary, starts `pregelix serve` in
// cluster mode on OS-assigned ports (plus any extra serve args) and
// `workers` worker processes, and waits for the cluster to assemble.
func startProcCluster(t *testing.T, ctx context.Context, workers int, serveArgs ...string) *procCluster {
	t.Helper()
	return startProcClusterWorkers(t, ctx, workers, nil, serveArgs...)
}

// startProcClusterWorkers is startProcCluster with extra per-worker
// command-line args.
func startProcClusterWorkers(t *testing.T, ctx context.Context, workers int, workerArgs []string, serveArgs ...string) *procCluster {
	t.Helper()
	c := &procCluster{t: t, ctx: ctx, bin: buildBinary(t), workers: workers, workerArgs: workerArgs}
	args := append([]string{"-listen", "127.0.0.1:0", "-cluster-listen", "127.0.0.1:0"}, serveArgs...)
	c.serve = c.startServeProc("serve", args...)
	c.serve.waitAddrs(t, 30*time.Second)
	for i := 0; i < workers; i++ {
		c.startWorker(fmt.Sprintf("worker%d", i+1))
	}
	waitHealthy(t, c.base()+"/healthz")
	return c
}

// startWorker attaches one worker process (2 nodes, plus extra args)
// to the cluster's control plane.
func (c *procCluster) startWorker(name string, args ...string) *exec.Cmd {
	c.t.Helper()
	log := &syncBuf{}
	full := append([]string{"worker", "-cc", c.serve.cc, "-nodes", "2"}, c.workerArgs...)
	full = append(full, args...)
	w := exec.CommandContext(c.ctx, c.bin, full...)
	w.Stderr = log
	if err := w.Start(); err != nil {
		c.t.Fatal(err)
	}
	t := c.t
	t.Cleanup(func() {
		w.Process.Kill()
		w.Wait()
		if t.Failed() {
			t.Logf("%s log:\n%s", name, log.String())
		}
	})
	c.workerProcs = append(c.workerProcs, w)
	return w
}

func (c *procCluster) base() string { return "http://" + c.serve.http }

// killServe SIGKILLs the serve process — no drain, no lease release —
// simulating a coordinator host loss.
func (c *procCluster) killServe() {
	c.serve.cmd.Process.Kill()
	c.serve.cmd.Wait()
}

// restartServe starts a replacement serve process on the SAME
// control-plane address (so -rejoin workers find it again) and a fresh
// OS-assigned HTTP port, then waits for it to come up.
func (c *procCluster) restartServe(serveArgs ...string) {
	c.t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-cluster-listen", c.serve.cc}, serveArgs...)
	p := c.startServeProc("serve-restarted", args...)
	p.waitAddrs(c.t, 60*time.Second)
	c.serve = p
}

// startStandby starts a warm standby controller pinned to the same
// control-plane address (it only binds after taking the lease over).
// The caller kills the primary, then promotes via p.waitAddrs +
// c.adoptServe(p).
func (c *procCluster) startStandby(serveArgs ...string) *procServe {
	c.t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-cluster-listen", c.serve.cc, "-standby-cc"}, serveArgs...)
	return c.startServeProc("serve-standby", args...)
}

// adoptServe makes a promoted standby the cluster's serve process.
func (c *procCluster) adoptServe(p *procServe) { c.serve = p }

// ---- in-process harnesses ----

// newTestServer boots the single-process serve stack (simulated
// runtime + JobManager) behind an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *core.JobManager) {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{
		BaseDir: t.TempDir(),
		Nodes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 2})
	ts := httptest.NewServer(newServer(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		rt.Close()
	})
	return ts, m
}

// startTestCluster boots an in-process coordinator plus worker
// goroutines and wraps them in the cluster HTTP server, so cluster API
// endpoints are exercised against a real (single-address-space)
// cluster without process-spawn cost.
func startTestCluster(t *testing.T, workers int) (*httptest.Server, *core.Coordinator) {
	t.Helper()
	coord, err := core.NewCoordinator(core.CoordinatorConfig{
		ListenAddr: "127.0.0.1:0",
		Workers:    workers,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		coord.Close()
		cancel()
	})
	for i := 0; i < workers; i++ {
		dir := t.TempDir()
		go func() {
			core.RunWorker(ctx, core.WorkerConfig{
				CCAddr:   coord.Addr(),
				BaseDir:  dir,
				Nodes:    2,
				BuildJob: buildJobFromSpec,
			})
		}()
	}
	readyCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
	defer done()
	if err := coord.WaitReady(readyCtx); err != nil {
		t.Fatalf("cluster never became ready: %v", err)
	}
	ts := httptest.NewServer(newClusterServer(coord))
	t.Cleanup(ts.Close)
	return ts, coord
}

// ---- shared HTTP helpers ----

// putFile uploads a file through the serve API.
func putFile(t *testing.T, base, path string, data []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/files"+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", path, resp.StatusCode)
	}
}

// getFile downloads a file through the serve API.
func getFile(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/files" + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download %s: status %d", path, resp.StatusCode)
	}
	return data
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// submitJob POSTs a job request body and returns the assigned id.
func submitJob(t *testing.T, base, body string) int64 {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	return v.ID
}

// pollJob fetches one job's status view.
func pollJob(t *testing.T, base string, id int64) jobView {
	t.Helper()
	var v jobView
	getJSON(t, fmt.Sprintf("%s/jobs/%d", base, id), &v)
	return v
}

// waitJobDone polls until the job reaches a terminal state.
func waitJobDone(t *testing.T, base string, id int64, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v := pollJob(t, base, id)
		if v.State == "done" || v.State == "failed" || v.State == "canceled" {
			return v
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %d never finished", id)
	return jobView{}
}

// doJSON performs one JSON request, fails the test on a status
// mismatch, and decodes the response into out when non-nil.
func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// uploadGraph PUTs a standard test webmap at the given file path.
func uploadGraph(t *testing.T, baseURL, path string) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := graphgen.WriteText(&buf, graphgen.Webmap(120, 3, 31)); err != nil {
		t.Fatal(err)
	}
	putFile(t, baseURL, path, buf.Bytes())
}

// waitJobState polls a job until it reaches the wanted state.
func waitJobState(t *testing.T, baseURL string, id int64, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := pollJob(t, baseURL, id)
		if cur.State == want {
			return cur
		}
		if cur.State == "failed" || cur.State == "canceled" {
			t.Fatalf("job %d ended %s: %s", id, cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s, want %s", id, cur.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTCP polls until something is listening at addr.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

// waitHealthy polls the health endpoint until the cluster reports ready.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("cluster never became healthy at %s", url)
}

// compareRanks requires two dumped PageRank outputs to agree per vertex
// within float tolerance.
func compareRanks(t *testing.T, a, b []byte) {
	t.Helper()
	parse := func(out []byte) map[string]float64 {
		m := map[string]float64{}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			fields := strings.SplitN(line, "\t", 3)
			if len(fields) < 2 {
				t.Fatalf("malformed output line %q", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad rank in %q: %v", line, err)
			}
			m[fields[0]] = v
		}
		return m
	}
	am, bm := parse(a), parse(b)
	if len(am) != len(bm) {
		t.Fatalf("vertex counts differ: %d vs %d", len(am), len(bm))
	}
	for id, av := range am {
		bv, ok := bm[id]
		if !ok {
			t.Fatalf("vertex %s missing from recovered output", id)
		}
		diff := math.Abs(av - bv)
		if tol := 1e-6 * math.Max(math.Abs(av), math.Abs(bv)); diff > tol && diff > 1e-300 {
			t.Fatalf("vertex %s: rank %v vs %v", id, av, bv)
		}
	}
}

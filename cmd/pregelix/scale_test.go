package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pregelix/internal/core"
)

// The in-process cluster setup (startTestCluster) and the HTTP helpers
// live in harness_test.go, shared with the process-level e2e tests.

// TestScaleEndpoint covers the elasticity API surface: GET /scale
// reports the live worker→nodes topology; an elastic worker joining is
// absorbed and reported as a scale-out event in both /scale and /stats;
// POST /scale drains a worker; and the refusal paths (unknown worker,
// last worker, bad body) answer with clean HTTP errors.
func TestScaleEndpoint(t *testing.T) {
	ts, coord := startTestCluster(t, 2)

	var sv scaleView
	getJSON(t, ts.URL+"/scale", &sv)
	if len(sv.Workers) != 2 {
		t.Fatalf("topology: %+v", sv.Workers)
	}
	for _, w := range sv.Workers {
		if len(w.Nodes) != 2 || w.Draining {
			t.Fatalf("unexpected worker view: %+v", w)
		}
	}

	// Scale out: no API call, just another worker with Elastic set.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	dir := t.TempDir()
	go func() {
		core.RunWorker(ctx, core.WorkerConfig{
			CCAddr:   coord.Addr(),
			BaseDir:  dir,
			Nodes:    2,
			BuildJob: buildJobFromSpec,
			Elastic:  true,
		})
	}()
	deadline := time.Now().Add(15 * time.Second)
	for coord.Workers() != 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if coord.Workers() != 3 {
		t.Fatalf("elastic worker never absorbed: %d workers", coord.Workers())
	}
	getJSON(t, ts.URL+"/scale", &sv)
	if len(sv.Workers) != 3 {
		t.Fatalf("topology after scale-out: %+v", sv.Workers)
	}
	sawScaleOut := false
	for _, ev := range sv.Events {
		if ev.Kind == "scale-out" {
			sawScaleOut = true
		}
	}
	if !sawScaleOut {
		t.Fatalf("no scale-out event: %+v", sv.Events)
	}

	// The same event log rides /stats.
	var stats clusterStatsView
	getJSON(t, ts.URL+"/stats", &stats)
	if len(stats.Rebalance) == 0 {
		t.Fatalf("stats carry no rebalance events: %+v", stats)
	}

	// Refusals: bad body, missing drain field, unknown worker.
	for _, body := range []string{"{not json", "{}", `{"drain":"10.9.9.9:1"}`} {
		resp, err := http.Post(ts.URL+"/scale", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			t.Fatalf("POST /scale %q accepted: %s", body, resp.Status)
		}
	}

	// Drain one worker through the API.
	getJSON(t, ts.URL+"/scale", &sv)
	victim := sv.Workers[len(sv.Workers)-1].Addr
	resp, err := http.Post(ts.URL+"/scale", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"drain":%q}`, victim)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /scale drain: %s", resp.Status)
	}
	deadline = time.Now().Add(15 * time.Second)
	for coord.Workers() != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if coord.Workers() != 2 {
		t.Fatalf("drained worker never left: %d workers", coord.Workers())
	}
}

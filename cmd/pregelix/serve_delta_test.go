package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pregelix/internal/core"
)

// postMutations POSTs one NDJSON batch against a job and returns the
// response status code and assigned sequence (0 unless 202).
func postMutations(t *testing.T, baseURL string, id int64, ndjson string) (int, uint64) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/jobs/%d/mutations", baseURL, id),
		"application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, 0
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Seq
}

// waitRefreshed polls a job's status until the given journal sequence
// has been folded into the sealed version and no refresh is in flight.
func waitRefreshed(t *testing.T, baseURL string, id int64, seq uint64) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur jobView
		doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d", baseURL, id), nil, http.StatusOK, &cur)
		if cur.DeltaError != "" {
			t.Fatalf("delta refresh failed: %s", cur.DeltaError)
		}
		if cur.DeltaSeq >= seq && !cur.Refreshing {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never refreshed past seq %d: %+v", id, seq, cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeMutationsAndRefresh drives the streaming-ingest flow over
// HTTP: run deltapagerank, POST a mutation batch, poll until the
// background refresher seals the new version, and require point reads
// to reflect the update — a funneled-in vertex's rank rises, an added
// vertex becomes queryable, a removed one disappears — while the
// documented error codes cover the bad paths.
func TestServeMutationsAndRefresh(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts.URL, "/in/web")

	var v jobView
	doJSON(t, http.MethodPost, ts.URL+"/jobs", jobRequest{
		Algorithm: "deltapagerank",
		Input:     "/in/web",
		Epsilon:   1e-10,
	}, http.StatusAccepted, &v)

	// Mutating a job with no sealed result yet: 409.
	if code, _ := postMutations(t, ts.URL, v.ID, `{"op":"addEdge","id":1,"dst":2}`); code != http.StatusConflict {
		t.Fatalf("mutations before completion returned %d, want 409", code)
	}
	waitJobState(t, ts.URL, v.ID, "done")

	// Pre-delta rank of the funnel target.
	const target = 60
	var before core.VertexQueryResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/%d", ts.URL, v.ID, target),
		nil, http.StatusOK, &before)

	// Bad batches: 400 without touching the journal.
	if code, _ := postMutations(t, ts.URL, v.ID, `{"op":"warp","id":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op returned %d, want 400", code)
	}
	if code, _ := postMutations(t, ts.URL, v.ID, "not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage batch returned %d, want 400", code)
	}

	// Funnel edges into the target, add a fresh vertex, and retire
	// vertex 119 (a Webmap leaf — removing its in-edges too keeps
	// dangling messages from resurrecting it).
	var batch strings.Builder
	for src := uint64(2); src <= 11; src++ {
		fmt.Fprintf(&batch, "{\"op\":\"addEdge\",\"id\":%d,\"dst\":%d}\n", src, target)
	}
	batch.WriteString(`{"op":"addVertex","id":100000,"value":0.001}` + "\n")
	batch.WriteString(fmt.Sprintf(`{"op":"addEdge","id":100000,"dst":%d}`, target) + "\n")
	code, seq := postMutations(t, ts.URL, v.ID, batch.String())
	if code != http.StatusAccepted || seq == 0 {
		t.Fatalf("mutation batch returned %d seq %d", code, seq)
	}

	cur := waitRefreshed(t, ts.URL, v.ID, seq)
	if cur.Version == "" || !strings.Contains(cur.Version, "@d") {
		t.Fatalf("refreshed status carries version %q, want a @d-suffixed seal", cur.Version)
	}

	// The same query endpoint now serves the refreshed version: the
	// funnel target's rank rose, the added vertex answers.
	var after core.VertexQueryResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/%d", ts.URL, v.ID, target),
		nil, http.StatusOK, &after)
	ob, _ := strconv.ParseFloat(before.Value, 64)
	oa, _ := strconv.ParseFloat(after.Value, 64)
	if oa <= ob {
		t.Fatalf("10 new in-edges did not raise vertex %d's rank (%v -> %v)", target, ob, oa)
	}
	var added core.VertexQueryResult
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/jobs/%d/vertices/100000", ts.URL, v.ID),
		nil, http.StatusOK, &added)
	if !added.Found {
		t.Fatalf("added vertex not queryable: %+v", added)
	}

	// A second batch chains onto the refreshed version.
	code, seq2 := postMutations(t, ts.URL, v.ID, `{"op":"addEdge","id":100000,"dst":1}`)
	if code != http.StatusAccepted || seq2 <= seq {
		t.Fatalf("second batch returned %d seq %d", code, seq2)
	}
	cur = waitRefreshed(t, ts.URL, v.ID, seq2)
	if c := strings.Count(cur.Version, "@d"); c != 2 {
		t.Fatalf("second refresh sealed %q, want a twice-@d-suffixed version", cur.Version)
	}
}

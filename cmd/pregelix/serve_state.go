package main

// Controller durability for cluster mode. With -state-dir set the
// controller keeps its soft state in the same shared directory the
// coordinator's hard state lives in, so a restarted (or standby
// takeover) `pregelix serve` process resumes where the dead one
// stopped:
//
//	<state-dir>/jobs.json   job registry: id, name, spec, state,
//	                        latest sealed delta version
//	<state-dir>/files/      uploaded inputs and captured outputs,
//	                        one file per path (URL-escaped names)
//
// (The coordinator itself owns <state-dir>/ckpt/, catalog.json and
// cc.lease — see internal/core/coordinator_state.go and lease.go.)
//
// Restore order matters: loadState runs before the HTTP listener opens
// so pollers never see a half-loaded registry, while resumeRestored —
// which re-submits in-flight jobs with Resume set and re-opens delta
// trackers with unapplied journal batches — waits in the background for
// the workers to rejoin first.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// persistedJob is one registry row: everything needed to re-run, resume
// or re-serve the job after a controller restart. Live counters (stats,
// progress) are not persisted — a resumed run regenerates them, and a
// done job's sealed result survives on the workers.
type persistedJob struct {
	ID           int64           `json:"id"`
	Name         string          `json:"name"`
	Spec         json.RawMessage `json:"spec"`
	Req          jobRequest      `json:"req"`
	State        string          `json:"state"`
	Error        string          `json:"error,omitempty"`
	DeltaVersion string          `json:"deltaVersion,omitempty"`
}

type persistedRegistry struct {
	NextID int64          `json:"nextId"`
	Jobs   []persistedJob `json:"jobs"`
}

func (s *clusterServer) jobsPath() string {
	if s.stateDir == "" {
		return ""
	}
	return filepath.Join(s.stateDir, "jobs.json")
}

// saveState snapshots the job registry to the state dir. Called on
// every registry transition (submission, completion, delta seal);
// best-effort, like the coordinator's catalog — a lost write costs a
// re-run of the affected job after the next restart, not correctness.
func (s *clusterServer) saveState() {
	path := s.jobsPath()
	if path == "" {
		return
	}
	s.mu.Lock()
	reg := persistedRegistry{NextID: s.nextID, Jobs: make([]persistedJob, 0, len(s.order))}
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		reg.Jobs = append(reg.Jobs, persistedJob{
			ID:           j.id,
			Name:         j.name,
			Spec:         j.spec,
			Req:          j.req,
			State:        j.state,
			Error:        j.errText,
			DeltaVersion: j.deltaVersion,
		})
		j.mu.Unlock()
	}
	s.mu.Unlock()
	data, err := json.Marshal(reg)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, path)
	}
}

// saveFile persists one uploaded or captured file under files/.
func (s *clusterServer) saveFile(path string, data []byte) {
	if s.stateDir == "" {
		return
	}
	dir := filepath.Join(s.stateDir, "files")
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	name := filepath.Join(dir, url.PathEscape(path))
	tmp := name + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, name)
	}
}

// loadState restores the file store and job registry from the state
// dir, returning the jobs that were still in flight when the previous
// controller died. Runs single-threaded before the HTTP server starts,
// so it touches the maps without locks. In-flight jobs come back as
// "queued" with a live cancel context; resumeRestored re-submits them
// once the cluster assembles.
func (s *clusterServer) loadState() []*clusterJob {
	if s.stateDir == "" {
		return nil
	}
	filesDir := filepath.Join(s.stateDir, "files")
	entries, _ := os.ReadDir(filesDir)
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		path, err := url.PathUnescape(e.Name())
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(filesDir, e.Name()))
		if err != nil {
			continue
		}
		s.files[path] = data
	}
	data, err := os.ReadFile(s.jobsPath())
	if err != nil {
		return nil
	}
	var reg persistedRegistry
	if json.Unmarshal(data, &reg) != nil {
		return nil
	}
	s.nextID = reg.NextID
	var resume []*clusterJob
	for _, pj := range reg.Jobs {
		j := &clusterJob{
			id:           pj.ID,
			name:         pj.Name,
			spec:         pj.Spec,
			req:          pj.Req,
			cancel:       func() {},
			done:         make(chan struct{}),
			state:        pj.State,
			errText:      pj.Error,
			deltaVersion: pj.DeltaVersion,
		}
		switch pj.State {
		case "queued", "running":
			// In flight when the old controller died: re-queue for a
			// resumed run (from the last checkpoint manifest when the job
			// checkpoints, from scratch otherwise).
			j.state, j.errText = "queued", ""
			ctx, cancel := context.WithCancel(context.Background())
			j.resumeCtx, j.cancel = ctx, cancel
			resume = append(resume, j)
		default:
			close(j.done)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if pj.ID > s.nextID {
			s.nextID = pj.ID
		}
	}
	return resume
}

// resumeRestored finishes the restore once the cluster has reassembled:
// it re-submits the jobs the dead controller left in flight (Resume set,
// so a checkpointed run continues from its last committed manifest) and
// re-opens delta trackers whose journals may hold unapplied batches.
func (s *clusterServer) resumeRestored(resume []*clusterJob) {
	if err := s.coord.WaitReady(context.Background()); err != nil {
		return
	}
	for _, j := range resume {
		req := j.req
		job, err := buildServeJob(&req)
		if err != nil {
			s.finishRestored(j, err)
			continue
		}
		s.mu.Lock()
		input, ok := s.files[req.Input]
		s.mu.Unlock()
		if !ok {
			s.finishRestored(j, fmt.Errorf("input %q lost across controller restart", req.Input))
			continue
		}
		// Synchronous: restored jobs re-run in their original submission
		// order before contending with new submissions for the slot.
		s.runJob(j.resumeCtx, j, j.spec, job, req, input, true)
	}
	s.restoreTrackers()
}

func (s *clusterServer) finishRestored(j *clusterJob, err error) {
	j.finish(nil, err)
	close(j.done)
	s.saveState()
}

// restoreTrackers re-opens the streaming-ingest tracker of every done
// job that has a delta journal, then kicks each so batches journaled
// but not yet applied when the old controller died get folded in
// without waiting for the next mutation to arrive.
func (s *clusterServer) restoreTrackers() {
	s.mu.Lock()
	jobs := make([]*clusterJob, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	store := s.coord.DeltaStore()
	for _, j := range jobs {
		j.mu.Lock()
		state, sealed := j.state, j.deltaVersion != ""
		j.mu.Unlock()
		if state != "done" {
			continue
		}
		if !sealed {
			names, err := store.List(fmt.Sprintf("/delta/j%d/", j.id))
			if err != nil || len(names) == 0 {
				continue
			}
		}
		if d, err := s.trackerFor(j); err == nil {
			d.kick()
		}
	}
}

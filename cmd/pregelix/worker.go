package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pregelix/internal/core"
	"pregelix/pregel"
)

// workerMain runs one node-controller process of a distributed cluster:
// it registers with the cluster controller (`pregelix serve` in cluster
// mode), hosts its share of the cluster's nodes, and exchanges shuffle
// frames with its peers over the wire transport.
func workerMain(args []string) {
	fs := flag.NewFlagSet("pregelix worker", flag.ExitOnError)
	var (
		cc     = fs.String("cc", "127.0.0.1:9090", "cluster controller control-plane address")
		listen = fs.String("listen", "127.0.0.1:0", "wire-transport listen address")
		nodes  = fs.Int("nodes", 2, "node controllers this worker contributes")
		dir    = fs.String("dir", "", "storage directory (default: a temp dir)")
		rejoin = fs.Bool("rejoin", false, "re-register with the controller whenever the connection is lost (run as a resilient standby)")
		wait   = fs.Duration("rejoin-wait", 2*time.Second, "pause between rejoin attempts")
	)
	fs.Parse(args)

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "pregelix-worker-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(baseDir)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "pregelix worker: shutting down")
		cancel()
	}()

	cfg := core.WorkerConfig{
		CCAddr:     *cc,
		DataListen: *listen,
		BaseDir:    baseDir,
		Nodes:      *nodes,
		BuildJob:   buildJobFromSpec,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pregelix "+format+"\n", args...)
		},
	}
	// A worker joining an already-running cluster parks as a standby and
	// is adopted by the next failure recovery; with -rejoin it also
	// re-registers whenever its controller connection drops, so one
	// long-lived process can serve as a permanent hot spare.
	for {
		err := core.RunWorker(ctx, cfg)
		if ctx.Err() != nil {
			return
		}
		if !*rejoin {
			if err != nil {
				fatal(err)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "pregelix worker: connection lost (%v), rejoining in %s\n", err, *wait)
		select {
		case <-ctx.Done():
			return
		case <-time.After(*wait):
		}
	}
}

// buildJobFromSpec resolves the serve API's job descriptor to a job.
// The cluster controller and every worker run this same mapping, so a
// descriptor shipped over the control plane means the same logical job
// everywhere.
func buildJobFromSpec(raw json.RawMessage) (*pregel.Job, error) {
	var req jobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, err
	}
	return buildServeJob(&req)
}

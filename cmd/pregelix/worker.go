package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pregelix/internal/core"
	"pregelix/internal/tuple"
	"pregelix/pregel"
)

// workerMain runs one node-controller process of a distributed cluster:
// it registers with the cluster controller (`pregelix serve` in cluster
// mode), hosts its share of the cluster's nodes, and exchanges shuffle
// frames with its peers over the wire transport. Joining a running
// cluster triggers an elastic scale-out (partitions migrate onto the
// new worker at the next superstep boundary) unless -standby parks it
// as a passive hot spare; with -drain, the first SIGINT/SIGTERM asks
// the controller to migrate this worker's partitions out and the
// process exits cleanly once released.
func workerMain(args []string) {
	fs := flag.NewFlagSet("pregelix worker", flag.ExitOnError)
	var (
		cc       = fs.String("cc", "127.0.0.1:9090", "cluster controller control-plane address")
		listen   = fs.String("listen", "127.0.0.1:0", "wire-transport listen address")
		nodes    = fs.Int("nodes", 2, "node controllers this worker contributes")
		dir      = fs.String("dir", "", "storage directory (default: a temp dir)")
		standby  = fs.Bool("standby", false, "when joining a running cluster, park as a passive standby instead of triggering an elastic rebalance")
		drain    = fs.Bool("drain", false, "on the first SIGINT/SIGTERM, drain gracefully: migrate partitions out, then exit (a second signal force-quits)")
		rejoin   = fs.Bool("rejoin", false, "re-register with the controller whenever the connection is lost (run as a resilient standby)")
		wait     = fs.Duration("rejoin-wait", 2*time.Second, "pause between rejoin attempts")
		compress = fs.String("compress", "auto", "frame compression for shuffle streams and checkpoint/migration images: off, flate, or auto (negotiated per stream; peers running -compress=off interoperate)")
	)
	fs.Parse(args)

	mode, err := tuple.ParseCompressMode(*compress)
	if err != nil {
		fatal(err)
	}

	baseDir := *dir
	if baseDir == "" {
		var err error
		baseDir, err = os.MkdirTemp("", "pregelix-worker-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(baseDir)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drainCh := make(chan struct{})
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		if *drain {
			// First signal: graceful departure. RunWorker notifies the
			// controller, keeps serving until the migration completes,
			// and returns nil when released. A second signal falls
			// through to the hard shutdown below.
			fmt.Fprintln(os.Stderr, "pregelix worker: draining (signal again to force quit)")
			close(drainCh)
			<-stop
		}
		fmt.Fprintln(os.Stderr, "pregelix worker: shutting down")
		cancel()
	}()

	// One session outlives every rejoin: the runtime and sealed query
	// results survive a lost controller connection, so when the worker
	// re-registers (after a coordinator restart or standby takeover) its
	// handshake reports the sealed versions it still holds and the new
	// coordinator re-adopts them instead of losing the query tier.
	session := core.NewWorkerSession()
	defer session.Close()

	cfg := core.WorkerConfig{
		CCAddr:     *cc,
		DataListen: *listen,
		BaseDir:    baseDir,
		Nodes:      *nodes,
		BuildJob:   buildJobFromSpec,
		Elastic:    !*standby,
		Compress:   mode,
		Session:    session,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pregelix "+format+"\n", args...)
		},
	}
	if *drain {
		cfg.Drain = drainCh
	}
	// A worker joining an already-running cluster is absorbed by the
	// next rebalance point (or, with -standby, parks until a failure
	// recovery adopts it); with -rejoin it also re-registers whenever
	// its controller connection drops, so one long-lived process can
	// serve as a permanent hot spare.
	for {
		err := core.RunWorker(ctx, cfg)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			// Released after a drain: done, even under -rejoin.
			return
		}
		if !*rejoin {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pregelix worker: connection lost (%v), rejoining in %s\n", err, *wait)
		select {
		case <-ctx.Done():
			return
		case <-time.After(*wait):
		}
	}
}

// buildJobFromSpec resolves the serve API's job descriptor to a job.
// The cluster controller and every worker run this same mapping, so a
// descriptor shipped over the control plane means the same logical job
// everywhere.
func buildJobFromSpec(raw json.RawMessage) (*pregel.Job, error) {
	var req jobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, err
	}
	return buildServeJob(&req)
}

// Command pregelix-gen generates the synthetic evaluation datasets
// (Webmap-like power-law graphs, BTC-like uniform-degree graphs, De
// Bruijn-like chains) in the engine's adjacency text format, plus the
// random-walk down-sampling and scale-up transformations of
// Section 7.1.
//
// Usage:
//
//	pregelix-gen -kind webmap -vertices 100000 -out webmap.txt
//	pregelix-gen -kind btc -vertices 50000 -scaleup 2 -out btc2x.txt
//	pregelix-gen -kind webmap -vertices 100000 -sample 20000 -out s.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"pregelix/internal/graphgen"
)

func main() {
	var (
		kind     = flag.String("kind", "webmap", "webmap | btc | chain")
		vertices = flag.Int("vertices", 10000, "vertex count before sampling/scale-up")
		degree   = flag.Float64("degree", 0, "average degree (default: 8 webmap, 8.94 btc)")
		seed     = flag.Int64("seed", 1, "generator seed")
		sample   = flag.Int("sample", 0, "random-walk down-sample to this many vertices")
		scaleup  = flag.Int("scaleup", 0, "deep-copy scale-up factor")
		branches = flag.Int("branches", 0, "extra chains (kind=chain)")
		out      = flag.String("out", "", "output path (default: stdout)")
		stats    = flag.Bool("stats", false, "print Table 3/4-style statistics to stderr")
	)
	flag.Parse()

	var g *graphgen.Graph
	switch *kind {
	case "webmap":
		d := *degree
		if d == 0 {
			d = 8
		}
		g = graphgen.Webmap(*vertices, d, *seed)
	case "btc":
		d := *degree
		if d == 0 {
			d = 8.94
		}
		g = graphgen.BTC(*vertices, d, *seed)
	case "chain":
		g = graphgen.Chain(*vertices, *branches, *seed)
	default:
		fmt.Fprintf(os.Stderr, "pregelix-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *sample > 0 {
		g = graphgen.RandomWalkSample(g, *sample, *seed+1)
	}
	if *scaleup > 1 {
		g = graphgen.ScaleUp(g, *scaleup)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pregelix-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := graphgen.WriteText(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "pregelix-gen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, graphgen.StatsOf(*kind, g).String())
	}
}

// Package pregelix is a Go reproduction of "Pregelix: Big(ger) Graph
// Analytics on a Dataflow Engine" (Bu, Borkar, Jia, Carey, Condie;
// VLDB 2014).
//
// Pregelix implements the Pregel vertex-centric programming model as an
// iterative dataflow of relational operators: message passing is a join
// between the Msg and Vertex relations, message combination is a
// group-by, and global state maintenance is a two-stage aggregation.
// Because every operator and access method is out-of-core capable, the
// same plans run in-memory and disk-based workloads transparently.
//
// Layout:
//
//   - pregel            — the user-facing Pregel API (Program, Combiner,
//     Aggregator, Resolver, Job with plan hints)
//   - pregel/algorithms — the built-in algorithm library (PageRank,
//     SSSP, CC, reachability, BFS tree, triangles, cliques, sampling,
//     path merging)
//   - internal/hyracks  — the shared-nothing dataflow engine substrate
//   - internal/storage  — B-tree, LSM B-tree, buffer cache, run files
//   - internal/operators— external sort, three group-bys, index joins
//   - internal/core     — the Pregelix runtime (plan generator,
//     superstep loop, checkpoint/recovery, job pipelining)
//   - internal/dfs      — a small replicated distributed file system
//   - internal/baselines— simulations of Giraph/Hama/GraphLab/GraphX
//   - internal/bench    — the Section 7 experiment harness
//
// Quickstart: see examples/quickstart, or run
//
//	go run ./cmd/pregelix -algorithm pagerank -input graph.txt
//
// Every table and figure of the paper's evaluation is regenerable via
//
//	go run ./cmd/pregelix-bench -experiment all
//
// or via the benchmarks in bench_test.go; see DESIGN.md and
// EXPERIMENTS.md.
package pregelix

// Package pregelix is a Go reproduction of "Pregelix: Big(ger) Graph
// Analytics on a Dataflow Engine" (Bu, Borkar, Jia, Carey, Condie;
// VLDB 2014).
//
// Pregelix implements the Pregel vertex-centric programming model as an
// iterative dataflow of relational operators: message passing is a join
// between the Msg and Vertex relations, message combination is a
// group-by, and global state maintenance is a two-stage aggregation.
// Because every operator and access method is out-of-core capable, the
// same plans run in-memory and disk-based workloads transparently.
//
// # Packed frames
//
// Tuples move between operators in packed byte-buffer frames
// (internal/tuple), mirroring the fixed-size binary frame transport the
// paper's performance rests on. A frame is one contiguous buffer:
//
//	[ tuple records ... | free | slot directory | tuple count ]
//	 0 ............ dataEnd                cap-4-4*count   cap-4
//
// The slot directory grows backward from the end of the buffer; slot i
// holds the end offset of record i. Each record is self-describing:
// u32 field count, per-field u32 end offsets, then the field bytes.
// Writers pack tuples with a tuple.FrameAppender; readers access fields
// in place through tuple.TupleRef subslices — no per-tuple or per-field
// objects are materialized on the data path, and frames are recycled
// through a pool.
//
// Ownership rules: a frame passed to FrameWriter.NextFrame is borrowed —
// the callee must copy anything it retains past the call, either packed
// (FrameAppender.AppendRef, one memmove) or boxed (TupleRef.Materialize,
// the compatibility view for call sites that legitimately keep data
// beyond frame lifetime, e.g. hash-table accumulators). A frame received
// from a connector channel is owned by the receiver, which returns it to
// the pool with tuple.PutFrame once drained; the pool asserts that no
// frame is released twice or recycled while still leased.
//
// # Fault tolerance
//
// Because every superstep is a deterministic dataflow job over
// B-tree/DFS state, failure handling is checkpoint-and-replay rather
// than in-memory state replication (Section 5.5). At user-selected
// superstep boundaries (Job.CheckpointEvery) the Vertex relation and
// the pending combined-message files are snapshotted per partition as
// packed frame images into a replicated file system, and a manifest —
// superstep, global state, partition→file map — is committed atomically
// (staged, then renamed) only once every partition image is durable.
// Recovery finds the highest committed manifest, rebuilds the vertex
// indexes (and the derivable Vid index) from the snapshots, and re-runs
// from the checkpointed superstep; application errors are forwarded to
// the user, never retried.
//
// Both execution shapes implement this. In a single process the failure
// manager blacklists the failed simulated machine and reloads onto the
// survivors. In the multi-process cluster the coordinator detects a
// dead worker (broken control connection, or missed heartbeats for a
// hung one), aborts the in-flight superstep on the survivors, repairs
// the topology — a standby `pregelix worker` adopts the dead worker's
// node IDs, or they are redistributed over the survivors — restores
// every partition from its own replicated checkpoint store, and resumes
// the loop; recovered results are identical to a failure-free run. See
// ARCHITECTURE.md for the recovery state machine and the manifest
// format, and internal/core/checkpoint.go for the commit protocol.
//
// # Elasticity
//
// The cluster also grows and shrinks while jobs run. A `pregelix
// worker` joining a running cluster triggers a coordinator-driven
// rebalance at the next superstep (or job) boundary: whole partitions —
// vertex index plus pending message frames, the same snapshot images a
// checkpoint writes — migrate onto the new worker over the control
// plane (partition.send/partition.recv), ownership and peer routing
// flip via cluster.reconfigure, and the loop resumes under a fresh
// recovery-epoch spec name. A graceful drain (`pregelix worker -drain`
// + SIGTERM, or POST /scale) migrates a departing worker's partitions
// out before releasing it. Unlike crash recovery nothing rolls back, no
// superstep is lost, and no checkpoint is required; results are
// identical to a static run. See the Elasticity section of
// ARCHITECTURE.md for the migration state machine.
//
// Layout:
//
//   - pregel            — the user-facing Pregel API (Program, Combiner,
//     Aggregator, Resolver, Job with plan hints)
//   - pregel/algorithms — the built-in algorithm library (PageRank,
//     SSSP, CC, reachability, BFS tree, triangles, cliques, sampling,
//     path merging)
//   - internal/hyracks  — the shared-nothing dataflow engine substrate,
//     including the multi-tenant admission scheduler (JobScheduler:
//     FIFO queue, bounded in-flight jobs, per-job operator-memory
//     carves, cancellation) and the connector Transport abstraction
//     (in-process channels or the real wire)
//   - internal/wire     — the network transport: per-stream multiplexed
//     frame images over one TCP connection per process pair with
//     credit-based backpressure, plus the cluster control plane
//     (worker registration handshake, job-phase RPCs, heartbeats, the
//     checkpoint/restore/reconfigure failure-recovery verbs and the
//     partition.send/recv/drop + worker drain/release elasticity verbs)
//   - internal/storage  — B-tree, LSM B-tree, buffer cache, run files
//   - internal/operators— external sort, three group-bys, index joins
//   - internal/core     — the Pregelix runtime (plan generator,
//     superstep loop, checkpoint/recovery, job pipelining), the
//     JobManager that runs many concurrent jobs on one shared cluster,
//     and the cluster Coordinator/worker pair that runs jobs across
//     separate node-controller OS processes, with the elastic
//     rebalancer (live scale-out and graceful drain)
//   - internal/dfs      — a small replicated distributed file system
//   - internal/baselines— simulations of Giraph/Hama/GraphLab/GraphX
//   - internal/bench    — the Section 7 experiment harness plus the
//     concurrent-jobs throughput experiment
//
// Quickstart: see examples/quickstart, or run
//
//	go run ./cmd/pregelix -algorithm pagerank -input graph.txt
//
// Multi-tenant serving mode (concurrent job submissions over HTTP
// against one shared simulated cluster):
//
//	go run ./cmd/pregelix serve -listen 127.0.0.1:8080 -max-concurrent 2
//
// Multi-process cluster mode (separate worker processes, frame shuffle
// over TCP):
//
//	go run ./cmd/pregelix serve -listen 127.0.0.1:8080 -workers 2 -cluster-listen 127.0.0.1:9090
//	go run ./cmd/pregelix worker -cc 127.0.0.1:9090 -nodes 2   # twice
//
// Programmatically, submit concurrent jobs through core.JobManager:
//
//	rt, _ := core.NewRuntime(core.Options{BaseDir: dir, Nodes: 4})
//	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 2})
//	h, _ := m.Submit(ctx, job) // queued, then admitted FIFO
//	stats, err := h.Wait(ctx)
//
// Every table and figure of the paper's evaluation is regenerable via
//
//	go run ./cmd/pregelix-bench -experiment all
//
// which also writes the machine-readable BENCH_PR2.json report
// (including the packed-vs-boxed message-path allocation comparison of
// the framepath experiment); see README.md for the scheduler/JobManager
// API tour and the frame memory layout.
package pregelix

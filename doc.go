// Package pregelix is a Go reproduction of "Pregelix: Big(ger) Graph
// Analytics on a Dataflow Engine" (Bu, Borkar, Jia, Carey, Condie;
// VLDB 2014).
//
// Pregelix implements the Pregel vertex-centric programming model as an
// iterative dataflow of relational operators: message passing is a join
// between the Msg and Vertex relations, message combination is a
// group-by, and global state maintenance is a two-stage aggregation.
// Because every operator and access method is out-of-core capable, the
// same plans run in-memory and disk-based workloads transparently.
//
// Layout:
//
//   - pregel            — the user-facing Pregel API (Program, Combiner,
//     Aggregator, Resolver, Job with plan hints)
//   - pregel/algorithms — the built-in algorithm library (PageRank,
//     SSSP, CC, reachability, BFS tree, triangles, cliques, sampling,
//     path merging)
//   - internal/hyracks  — the shared-nothing dataflow engine substrate,
//     including the multi-tenant admission scheduler (JobScheduler:
//     FIFO queue, bounded in-flight jobs, per-job operator-memory
//     carves, cancellation)
//   - internal/storage  — B-tree, LSM B-tree, buffer cache, run files
//   - internal/operators— external sort, three group-bys, index joins
//   - internal/core     — the Pregelix runtime (plan generator,
//     superstep loop, checkpoint/recovery, job pipelining) and the
//     JobManager that runs many concurrent jobs on one shared cluster
//   - internal/dfs      — a small replicated distributed file system
//   - internal/baselines— simulations of Giraph/Hama/GraphLab/GraphX
//   - internal/bench    — the Section 7 experiment harness plus the
//     concurrent-jobs throughput experiment
//
// Quickstart: see examples/quickstart, or run
//
//	go run ./cmd/pregelix -algorithm pagerank -input graph.txt
//
// Multi-tenant serving mode (concurrent job submissions over HTTP
// against one shared simulated cluster):
//
//	go run ./cmd/pregelix serve -listen 127.0.0.1:8080 -max-concurrent 2
//
// Programmatically, submit concurrent jobs through core.JobManager:
//
//	rt, _ := core.NewRuntime(core.Options{BaseDir: dir, Nodes: 4})
//	m := core.NewJobManager(rt, core.JobManagerOptions{MaxConcurrentJobs: 2})
//	h, _ := m.Submit(ctx, job) // queued, then admitted FIFO
//	stats, err := h.Wait(ctx)
//
// Every table and figure of the paper's evaluation is regenerable via
//
//	go run ./cmd/pregelix-bench -experiment all
//
// which also writes the machine-readable BENCH_PR1.json report; see
// README.md for the scheduler/JobManager API tour.
package pregelix
